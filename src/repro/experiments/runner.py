"""Shared experiment runner: one function per repeated pattern in the harness.

Every figure/table of the paper boils down to: build a benchmark, run an
active-learning loop for one or more selector configurations, and aggregate
the learning curves.  The runner centralizes dataset caching (per process) and
the seed/α averaging conventions so the figure and table builders stay short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.active.loop import ActiveLearningLoop, ActiveLearningResult
from repro.active.selectors import (
    BattleshipConfig,
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    Selector,
)
from repro.active.weak_supervision import WeakSupervisionMode
from repro.data.dataset import EMDataset
from repro.datasets.registry import load_benchmark
from repro.evaluation.curves import LearningCurve, average_curves
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings

#: Selector factory signature: ``(alpha, beta) -> Selector``.
SelectorFactory = Callable[[float, float], Selector]

_METHOD_FACTORIES: dict[str, SelectorFactory] = {
    "battleship": lambda alpha, beta: BattleshipSelector(
        BattleshipConfig(alpha=alpha, beta=beta)),
    "dal": lambda alpha, beta: EntropySelector(),
    "dial": lambda alpha, beta: CommitteeSelector(),
    "random": lambda alpha, beta: RandomSelector(),
}

#: The active-learning methods compared throughout Section 5.
ACTIVE_LEARNING_METHODS: tuple[str, ...] = tuple(_METHOD_FACTORIES)

_DATASET_CACHE: dict[tuple[str, str, int], EMDataset] = {}


def method_factory(name: str) -> SelectorFactory:
    """Look up the selector factory for ``name``."""
    try:
        return _METHOD_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"Unknown method {name!r}; expected one of {sorted(_METHOD_FACTORIES)}"
        ) from None


def get_dataset(name: str, settings: ExperimentSettings) -> EMDataset:
    """Load (and cache) the benchmark ``name`` at the settings' scale."""
    key = (name, settings.scale.name, settings.base_random_seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load_benchmark(name, scale=settings.scale,
                                             random_state=settings.base_random_seed)
    return _DATASET_CACHE[key]


def clear_dataset_cache() -> None:
    """Drop all cached benchmarks (used by tests)."""
    _DATASET_CACHE.clear()


@dataclass
class MethodRun:
    """All raw results of one method on one dataset (across seeds and α values)."""

    dataset: str
    method: str
    results: list[ActiveLearningResult] = field(default_factory=list)

    def curve(self) -> LearningCurve:
        """Learning curve averaged over every underlying run."""
        return average_curves([result.learning_curve() for result in self.results])

    def selection_runtimes(self) -> list[float]:
        """Per-iteration selection runtimes averaged over runs (Figure 6)."""
        per_run = [result.selection_runtimes() for result in self.results]
        if not per_run:
            return []
        length = min(len(runtimes) for runtimes in per_run)
        return [
            float(sum(runtimes[i] for runtimes in per_run) / len(per_run))
            for i in range(length)
        ]


def run_single(
    dataset: EMDataset,
    selector: Selector,
    settings: ExperimentSettings,
    random_state: int,
    weak_supervision: WeakSupervisionMode | str = WeakSupervisionMode.SELECTOR,
) -> ActiveLearningResult:
    """One active-learning run with the settings' iteration/budget counts."""
    loop = ActiveLearningLoop(
        dataset=dataset,
        selector=selector,
        matcher_config=settings.matcher_config,
        featurizer_config=settings.featurizer_config,
        iterations=settings.iterations,
        budget_per_iteration=settings.budget_per_iteration,
        seed_size=settings.seed_size,
        weak_supervision=weak_supervision,
        random_state=random_state,
    )
    return loop.run()


def run_method(
    dataset_name: str,
    method: str,
    settings: ExperimentSettings,
    beta: float | None = None,
    alphas: tuple[float, ...] | None = None,
    weak_supervision: WeakSupervisionMode | str = WeakSupervisionMode.SELECTOR,
) -> MethodRun:
    """Run ``method`` on ``dataset_name`` averaged over seeds (and α values).

    The battleship method is additionally averaged over ``alphas`` (the paper
    averages α ∈ {0.25, 0.5, 0.75}); other methods ignore the α/β arguments.
    """
    factory = method_factory(method)
    dataset = get_dataset(dataset_name, settings)
    beta = settings.beta if beta is None else beta
    alpha_values = alphas if alphas is not None else (
        settings.alphas if method == "battleship" else (0.5,))

    run = MethodRun(dataset=dataset_name, method=method)
    for seed in settings.seeds():
        for alpha in alpha_values:
            selector = factory(alpha, beta)
            run.results.append(run_single(dataset, selector, settings, seed,
                                          weak_supervision))
    return run


def run_learning_curves(
    dataset_names: tuple[str, ...],
    methods: tuple[str, ...],
    settings: ExperimentSettings,
) -> dict[str, dict[str, LearningCurve]]:
    """Learning curves per dataset per method (the data behind Figure 5)."""
    curves: dict[str, dict[str, LearningCurve]] = {}
    for dataset_name in dataset_names:
        curves[dataset_name] = {}
        for method in methods:
            curves[dataset_name][method] = run_method(dataset_name, method, settings).curve()
    return curves
