"""Shared experiment runner: one function per repeated pattern in the harness.

Every figure/table of the paper boils down to: enumerate a grid of
:class:`~repro.experiments.engine.RunSpec` jobs, resolve them through an
:class:`~repro.experiments.engine.ExperimentEngine` (serially, in parallel,
or straight from a warm artifact store), and aggregate the learning curves.
The execution primitives live in :mod:`repro.experiments.engine`; this module
keeps the seed/α averaging conventions so the figure and table builders stay
short, and re-exports the primitives under their historical names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.active.loop import ActiveLearningResult
from repro.active.weak_supervision import WeakSupervisionMode
from repro.evaluation.curves import LearningCurve, average_curves
from repro.exceptions import ConfigurationError
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import (
    ACTIVE_LEARNING_METHODS,
    DEFAULT_SCENARIO,
    ExperimentEngine,
    RunSpec,
    SelectorFactory,
    clear_dataset_cache,
    clear_feature_cache,
    get_dataset,
    get_feature_matrix,
    method_factory,
    run_single,
)

__all__ = [
    "ACTIVE_LEARNING_METHODS",
    "MethodRun",
    "SelectorFactory",
    "clear_dataset_cache",
    "clear_feature_cache",
    "enumerate_run_specs",
    "get_dataset",
    "get_feature_matrix",
    "method_factory",
    "run_curve_grid",
    "run_learning_curves",
    "run_method",
    "run_single",
    "run_spec_grid",
]


@dataclass
class MethodRun:
    """All raw results of one method on one dataset (across seeds and α values)."""

    dataset: str
    method: str
    results: list[ActiveLearningResult] = field(default_factory=list)

    def curve(self) -> LearningCurve:
        """Learning curve averaged over every underlying run."""
        return average_curves([result.learning_curve() for result in self.results])

    def selection_runtimes(self) -> list[float]:
        """Per-iteration selection runtimes averaged over runs (Figure 6).

        Each iteration is averaged over the runs that reached it, so a run
        that stopped selecting early (exhausted pool) shortens nothing but
        its own contribution.
        """
        per_run = [result.selection_runtimes() for result in self.results]
        length = max((len(runtimes) for runtimes in per_run), default=0)
        averaged = []
        for i in range(length):
            reached = [runtimes[i] for runtimes in per_run if len(runtimes) > i]
            averaged.append(float(sum(reached) / len(reached)))
        return averaged


def enumerate_run_specs(
    dataset_name: str,
    method: str,
    settings: ExperimentSettings,
    beta: float | None = None,
    alphas: tuple[float, ...] | None = None,
    weak_supervision: WeakSupervisionMode | str = WeakSupervisionMode.SELECTOR,
    scenario: str = DEFAULT_SCENARIO,
) -> list[RunSpec]:
    """The job grid behind one ``run_method`` call (seeds × α values).

    The battleship method is averaged over ``alphas`` (the paper averages
    α ∈ {0.25, 0.5, 0.75}); other methods run a single nominal α.
    ``scenario`` selects the robustness scenario every enumerated run
    executes under (the paper's perfect setting by default).
    """
    method_factory(method)  # validate the name before enumerating
    beta = settings.beta if beta is None else beta
    alpha_values = alphas if alphas is not None else (
        settings.alphas if method == "battleship" else (0.5,))
    return [
        RunSpec.create(dataset_name, method, seed, alpha, beta,
                       weak_supervision, settings, scenario=scenario)
        for seed in settings.seeds()
        for alpha in alpha_values
    ]


def _resolve_engine(settings: ExperimentSettings,
                    engine: ExperimentEngine | None) -> ExperimentEngine:
    """Default to a serial, store-less engine over ``settings``."""
    if engine is None:
        return ExperimentEngine(settings)
    if engine.settings != settings:
        raise ConfigurationError(
            "The engine was built from different ExperimentSettings than the "
            "requested run; construct engine and run from the same settings")
    return engine


def run_spec_grid(
    spec_groups: dict[object, list[RunSpec]],
    settings: ExperimentSettings,
    engine: ExperimentEngine | None = None,
) -> dict[object, list[ActiveLearningResult]]:
    """Resolve several labeled groups of specs through one engine batch.

    Submitting the union as a single batch lets a parallel executor overlap
    runs *across* groups (e.g. across a figure's β values or a table's α
    columns), instead of being capped at the seeds within one group.

    Under a ``--keep-going`` executor a permanently failed spec has no
    result; it is dropped from its group (the engine's report and failure
    ledger account for it), so the surviving runs still aggregate.
    """
    engine = _resolve_engine(settings, engine)
    all_specs = [spec for specs in spec_groups.values() for spec in specs]
    results = engine.run(all_specs)
    return {key: [results[spec] for spec in specs if spec in results]
            for key, specs in spec_groups.items()}


def run_curve_grid(
    spec_groups: dict[object, list[RunSpec]],
    settings: ExperimentSettings,
    engine: ExperimentEngine | None = None,
) -> dict[object, LearningCurve]:
    """One seed/α-averaged learning curve per labeled group of specs.

    This is the aggregation every figure and table shares: resolve the whole
    grid as one engine batch (see :func:`run_spec_grid`), then collapse each
    group's raw results into a single averaged curve.  Keeping the averaging
    convention here means a change to it lands in every builder at once.
    """
    resolved = run_spec_grid(spec_groups, settings, engine)
    # A group whose every run failed under --keep-going has no curve.
    return {key: average_curves([result.learning_curve() for result in results])
            for key, results in resolved.items() if results}


def run_method(
    dataset_name: str,
    method: str,
    settings: ExperimentSettings,
    beta: float | None = None,
    alphas: tuple[float, ...] | None = None,
    weak_supervision: WeakSupervisionMode | str = WeakSupervisionMode.SELECTOR,
    engine: ExperimentEngine | None = None,
) -> MethodRun:
    """Run ``method`` on ``dataset_name`` averaged over seeds (and α values).

    With an ``engine`` the runs execute through its executor and artifact
    store (parallelism and resume); otherwise they run serially in-process.
    """
    specs = enumerate_run_specs(dataset_name, method, settings,
                                beta=beta, alphas=alphas,
                                weak_supervision=weak_supervision)
    resolved = run_spec_grid({dataset_name: specs}, settings, engine)
    return MethodRun(dataset=dataset_name, method=method,
                     results=resolved[dataset_name])


def run_learning_curves(
    dataset_names: tuple[str, ...],
    methods: tuple[str, ...],
    settings: ExperimentSettings,
    engine: ExperimentEngine | None = None,
) -> dict[str, dict[str, LearningCurve]]:
    """Learning curves per dataset per method (the data behind Figure 5).

    The whole grid is enumerated up front and submitted as one batch, so a
    parallel engine overlaps runs across datasets and methods, not just
    within one method.
    """
    groups = {
        (dataset_name, method): enumerate_run_specs(dataset_name, method, settings)
        for dataset_name in dataset_names
        for method in methods
    }
    curves = run_curve_grid(groups, settings, engine)
    return {
        dataset_name: {method: curves[(dataset_name, method)]
                       for method in methods
                       if (dataset_name, method) in curves}
        for dataset_name in dataset_names
    }
