"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.configs import (
    ABLATION_DATASETS,
    PAPER_ALPHAS,
    PAPER_BETA,
    PAPER_NUM_SEEDS,
    ExperimentSettings,
    default_settings,
)
from repro.experiments.figures import (
    LatentSpaceReport,
    figure1_latent_space,
    figure5_learning_curves,
    figure6_runtime,
    figure7_beta_ablation,
    figure7_rows,
    figure8_correspondence,
    figure9_weak_supervision,
    figure10_ws_method,
)
from repro.experiments.runner import (
    ACTIVE_LEARNING_METHODS,
    MethodRun,
    clear_dataset_cache,
    get_dataset,
    method_factory,
    run_learning_curves,
    run_method,
    run_single,
)
from repro.experiments.tables import (
    table3_dataset_statistics,
    table4_f1_by_budget,
    table5_auc,
    table6_alpha_ablation,
)

__all__ = [
    "ABLATION_DATASETS",
    "ACTIVE_LEARNING_METHODS",
    "ExperimentSettings",
    "LatentSpaceReport",
    "MethodRun",
    "PAPER_ALPHAS",
    "PAPER_BETA",
    "PAPER_NUM_SEEDS",
    "clear_dataset_cache",
    "default_settings",
    "figure10_ws_method",
    "figure1_latent_space",
    "figure5_learning_curves",
    "figure6_runtime",
    "figure7_beta_ablation",
    "figure7_rows",
    "figure8_correspondence",
    "figure9_weak_supervision",
    "get_dataset",
    "method_factory",
    "run_learning_curves",
    "run_method",
    "run_single",
    "table3_dataset_statistics",
    "table4_f1_by_budget",
    "table5_auc",
    "table6_alpha_ablation",
]
