"""Robustness sweeps over the scenario matrix (beyond the paper).

The paper evaluates every selector under a perfect oracle only; Section 3.6
concedes real annotators are noisy.  These builders sweep scenario × dataset ×
selector grids through the :class:`~repro.experiments.engine.ExperimentEngine`
(so parallel execution and artifact-store resume apply unchanged) and
aggregate them into:

* :func:`robustness_curves` — one averaged learning curve per
  (dataset, scenario, method) cell;
* :func:`robustness_rows` — the summary table behind the F1-vs-noise
  robustness figure: final F1 and AUC per cell, plus each scenario's scalar
  noise level so the rows plot directly;
* :func:`noise_sensitivity_rows` — the figure's digest: for every
  noise-parameterized scenario, each selector's F1 drop relative to the
  perfect scenario on the same dataset.
"""

from __future__ import annotations

from repro.evaluation.curves import LearningCurve
from repro.experiments.configs import ExperimentSettings
from repro.experiments.engine import DEFAULT_SCENARIO, ExperimentEngine
from repro.experiments.runner import (
    ACTIVE_LEARNING_METHODS,
    enumerate_run_specs,
    run_curve_grid,
)
from repro.scenarios import Scenario, resolve_scenarios

#: Key of one cell of the robustness grid.
ScenarioCell = tuple[str, str, str]  # (dataset, scenario, method)


def scenario_grid_specs(
    settings: ExperimentSettings,
    dataset_names: tuple[str, ...],
    scenarios: tuple[Scenario, ...],
    methods: tuple[str, ...],
) -> dict[ScenarioCell, list]:
    """Enumerate the full scenario × dataset × method job grid.

    Returned as labeled groups so the whole grid submits as *one* engine
    batch — a parallel executor overlaps runs across scenarios, not just
    within one.
    """
    return {
        (dataset_name, scenario.name, method): enumerate_run_specs(
            dataset_name, method, settings, scenario=scenario.name)
        for dataset_name in dataset_names
        for scenario in scenarios
        for method in methods
    }


def robustness_curves(
    settings: ExperimentSettings,
    dataset_names: tuple[str, ...] | None = None,
    scenarios: tuple[Scenario, ...] | str | None = None,
    methods: tuple[str, ...] | None = None,
    engine: ExperimentEngine | None = None,
) -> dict[ScenarioCell, LearningCurve]:
    """One seed/α-averaged learning curve per scenario-grid cell."""
    dataset_names = tuple(dataset_names or settings.datasets)
    scenarios = resolve_scenarios(scenarios)
    methods = tuple(methods or ACTIVE_LEARNING_METHODS)
    groups = scenario_grid_specs(settings, dataset_names, scenarios, methods)
    return run_curve_grid(groups, settings, engine)


def robustness_rows(
    curves: dict[ScenarioCell, LearningCurve],
) -> list[dict[str, object]]:
    """Flat summary rows (the data behind the robustness figure).

    ``noise_level`` is the scenario's scalar oracle-noise magnitude, so
    plotting ``final_f1`` against it per method gives the F1-vs-noise figure
    directly.
    """
    from repro.scenarios import get_scenario

    rows: list[dict[str, object]] = []
    for (dataset_name, scenario_name, method), curve in curves.items():
        scenario = get_scenario(scenario_name)
        rows.append({
            "dataset": dataset_name,
            "scenario": scenario_name,
            "method": method,
            "noise_level": round(scenario.oracle.noise_level, 3),
            "final_f1": round(curve.final_f1 * 100, 2),
            "auc": round(curve.auc(), 2),
        })
    return rows


def noise_sensitivity_rows(
    curves: dict[ScenarioCell, LearningCurve],
) -> list[dict[str, object]]:
    """F1 drop of each (dataset, scenario, method) cell vs. its perfect run.

    Cells whose dataset/method pair has no perfect-scenario run in ``curves``
    are skipped — there is no baseline to subtract.  The perfect cells
    themselves are omitted (their drop is zero by construction).
    """
    baselines = {
        (dataset_name, method): curve
        for (dataset_name, scenario_name, method), curve in curves.items()
        if scenario_name == DEFAULT_SCENARIO
    }
    rows: list[dict[str, object]] = []
    for (dataset_name, scenario_name, method), curve in curves.items():
        if scenario_name == DEFAULT_SCENARIO:
            continue
        baseline = baselines.get((dataset_name, method))
        if baseline is None:
            continue
        rows.append({
            "dataset": dataset_name,
            "scenario": scenario_name,
            "method": method,
            "final_f1": round(curve.final_f1 * 100, 2),
            "f1_drop": round((baseline.final_f1 - curve.final_f1) * 100, 2),
            "auc_drop": round(baseline.auc() - curve.auc(), 2),
        })
    return rows
