"""Fault-tolerance primitives for campaign execution.

At manifest-campaign scale a sweep is only as reliable as its weakest worker:
one transient exception, one OOM-killed process, or one hung job must cost a
single retried run — never the whole sweep.  This module hosts the three
pieces the engine builds that guarantee on:

* :class:`RetryPolicy` — how often a failed job is retried, with exponential
  backoff whose jitter is *deterministic* (seeded by spec fingerprint ×
  attempt, no RNG), and the transient-vs-permanent error classification.
* :class:`FaultInjector` — a deterministic chaos harness: directives keyed by
  RunSpec fingerprint × attempt raise transient or permanent errors, hard-kill
  the worker (``os._exit``), stall a job, or tear an artifact write.  It is
  activated only through ``REPRO_CHAOS`` / ``--chaos``, so production sweeps
  never pay for it; tests and CI use it to exercise the recovery machinery on
  demand (the PR 9 philosophy: don't trust robustness code you can't break
  deliberately).
* :class:`FailureLedger` — the persisted record of permanently failed jobs,
  written next to the :class:`~repro.experiments.store.ArtifactStore` so a
  ``--keep-going`` campaign can be resumed and retries exactly the jobs that
  failed (their siblings resume from the store).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
import warnings
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.exceptions import ConfigurationError, ReproError

if TYPE_CHECKING:  # avoid a circular import; the engine imports this module
    from repro.experiments.engine import RunSpec
    from repro.experiments.store import ArtifactStore

#: Environment variable carrying a chaos spec (same grammar as ``--chaos``).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit code an injected worker kill dies with (visible in pool diagnostics).
KILL_EXIT_CODE = 87

#: How long an injected hang stalls by default (seconds).  Finite, so a test
#: that forgets a ``--timeout`` eventually completes instead of deadlocking.
DEFAULT_HANG_SECONDS = 300.0

#: A spec whose in-flight attempt broke the worker pool this many times is
#: quarantined (recorded as a permanent failure) instead of resubmitted —
#: a job that reliably OOM-kills its worker must not take the sweep down
#: with it on every retry.
POOL_KILL_QUARANTINE = 2

#: Bumped whenever the failure-ledger layout changes incompatibly.
LEDGER_FORMAT_VERSION = 1


class InjectedTransientError(ReproError):
    """A chaos-injected failure the retry machinery should absorb."""


class InjectedPermanentError(ReproError):
    """A chaos-injected failure that must *not* be retried."""


class JobTimeoutError(ReproError):
    """A job exceeded its per-job wall-clock timeout and was cancelled."""


class WorkerCrashError(ReproError):
    """A job's worker process died (OOM, signal, ``os._exit``)."""


class TornWriteError(ReproError):
    """A chaos-injected torn artifact write (crash mid-``put`` simulation)."""


#: Error classes worth retrying: infrastructure faults that a fresh attempt
#: on a healthy worker can survive.  Everything else — assertion errors,
#: configuration errors, genuine bugs — is permanent: retrying deterministic
#: code on the same inputs re-raises the same error and wastes the budget.
TRANSIENT_ERROR_TYPES: tuple[type[BaseException], ...] = (
    InjectedTransientError,
    TornWriteError,
    JobTimeoutError,
    WorkerCrashError,
    BrokenProcessPool,
    ConnectionError,
    TimeoutError,
    OSError,
)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` belongs to the retryable (transient) class."""
    return isinstance(error, TRANSIENT_ERROR_TYPES)


def _unit_interval(fingerprint: str, attempt: int) -> float:
    """Deterministic pseudo-uniform draw in [0, 1] for jitter.

    Derived from a content hash instead of an RNG: the same (fingerprint,
    attempt) pair always backs off identically, in every process, under any
    start method — so fault-injected sweeps replay bit-identically.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:{attempt}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16) / 0xFFFFFFFF


@dataclass(frozen=True)
class RetryPolicy:
    """How failed jobs are retried.

    ``max_attempts`` counts *attempts*, not retries: the default of 3 means
    one initial run plus up to two retries.  Backoff for the n-th failed
    attempt is ``backoff_base * backoff_factor**n`` capped at
    ``backoff_max``, spread by ±``jitter`` (a fraction) whose value is a
    deterministic function of spec fingerprint × attempt — identical across
    reruns and processes, so chaos tests stay reproducible.  ``timeout`` is
    the per-job wall-clock limit enforced by the parallel executor (a serial
    executor cannot preempt its own process).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.25
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max < 0:
            raise ConfigurationError(
                f"backoff_max must be >= 0, got {self.backoff_max}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be > 0 seconds, got {self.timeout}")

    def backoff_seconds(self, fingerprint: str, attempt: int) -> float:
        """Deterministic backoff before retrying ``attempt`` (0-based)."""
        raw = min(self.backoff_max,
                  self.backoff_base * self.backoff_factor ** attempt)
        spread = (_unit_interval(fingerprint, attempt) - 0.5) * 2 * self.jitter
        return max(0.0, min(self.backoff_max, raw * (1.0 + spread)))

    def retryable(self, error: BaseException, failed_attempts: int) -> bool:
        """Whether a job that failed ``failed_attempts`` times should retry."""
        return failed_attempts < self.max_attempts and is_transient(error)

    def to_dict(self) -> dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "jitter": self.jitter,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RetryPolicy":
        timeout = payload.get("timeout")
        return cls(
            max_attempts=int(payload.get("max_attempts", 3)),  # type: ignore[arg-type]
            backoff_base=float(payload.get("backoff_base", 0.05)),  # type: ignore[arg-type]
            backoff_factor=float(payload.get("backoff_factor", 2.0)),  # type: ignore[arg-type]
            backoff_max=float(payload.get("backoff_max", 30.0)),  # type: ignore[arg-type]
            jitter=float(payload.get("jitter", 0.25)),  # type: ignore[arg-type]
            timeout=float(timeout) if timeout is not None else None,  # type: ignore[arg-type]
        )


# --------------------------------------------------------------------------- #
# Deterministic fault injection
# --------------------------------------------------------------------------- #
#: The failure modes a directive can inject.
FAULT_KINDS = ("raise", "permanent", "kill", "hang", "torn")


@dataclass(frozen=True)
class FaultDirective:
    """One injected fault: *which* job, *which* attempt, *what* happens.

    ``rank`` addresses the job by its position in the submitted batch;
    :meth:`FaultInjector.resolve` turns ranks into concrete fingerprints
    before anything executes, so the directive fires identically under
    serial, parallel, and respawned-worker execution.  ``attempt`` is the
    0-based attempt the fault fires on — a directive for attempt 0 makes the
    first attempt fail and every retry run clean, which is exactly the
    "transient fault costs one retry" contract the acceptance tests pin.
    """

    kind: str
    rank: int = 0
    attempt: int = 0
    value: float | None = None  # hang duration (seconds)
    fingerprint: str | None = None  # filled by resolve()

    def matches(self, fingerprint: str, attempt: int) -> bool:
        return (self.fingerprint is not None
                and fingerprint.startswith(self.fingerprint)
                and attempt == self.attempt)


def _parse_directive(text: str) -> FaultDirective:
    """Parse ``KIND[=VALUE][@RANK][:ATTEMPT]`` (e.g. ``kill@0``, ``raise@1:0``,
    ``hang=20@2``)."""
    original = text
    attempt = 0
    rank = 0
    value: float | None = None
    if "@" in text:
        text, _, target = text.partition("@")
        if ":" in target:
            target, _, attempt_text = target.partition(":")
            attempt = _parse_int(attempt_text, original, "attempt")
        rank = _parse_int(target, original, "rank")
    elif ":" in text:
        text, _, attempt_text = text.partition(":")
        attempt = _parse_int(attempt_text, original, "attempt")
    if "=" in text:
        text, _, value_text = text.partition("=")
        try:
            value = float(value_text)
        except ValueError:
            raise ConfigurationError(
                f"chaos directive {original!r}: {value_text!r} is not a "
                "number") from None
    kind = text.strip()
    if kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"chaos directive {original!r}: unknown fault kind {kind!r} "
            f"(choose from {', '.join(FAULT_KINDS)})")
    if rank < 0 or attempt < 0:
        raise ConfigurationError(
            f"chaos directive {original!r}: rank and attempt must be >= 0")
    return FaultDirective(kind=kind, rank=rank, attempt=attempt, value=value)


def _parse_int(text: str, original: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"chaos directive {original!r}: {text!r} is not an integer "
            f"{what}") from None


@dataclass
class FaultInjector:
    """Deterministically inject failures keyed by fingerprint × attempt.

    Built from a chaos spec — a comma-separated list of
    ``KIND[=VALUE][@RANK][:ATTEMPT]`` directives — and resolved against the
    submitted batch so every directive is bound to a concrete fingerprint.
    The injector is picklable and travels to pool workers through the spawn
    initializer (the same route as scenario definitions), so injection is
    identical under every start method.
    """

    directives: tuple[FaultDirective, ...] = ()
    #: Per-process count of torn writes already injected per fingerprint;
    #: a ``torn`` directive's ``attempt`` indexes into this sequence, so the
    #: k-th write of a fingerprint tears and the (k+1)-th lands clean.
    _torn_counts: dict[str, int] = field(default_factory=dict, compare=False)

    @classmethod
    def from_spec(cls, text: str | None) -> "FaultInjector | None":
        """Parse a chaos spec; ``None``/blank means chaos stays off."""
        if text is None or not text.strip():
            return None
        directives = tuple(_parse_directive(part.strip())
                           for part in text.split(",") if part.strip())
        return cls(directives=directives) if directives else None

    @classmethod
    def from_environment(cls) -> "FaultInjector | None":
        """The injector declared by ``REPRO_CHAOS``, if any."""
        return cls.from_spec(os.environ.get(CHAOS_ENV_VAR))

    def resolve(self, specs: "list[RunSpec] | tuple[RunSpec, ...]",
                ) -> "FaultInjector":
        """Bind rank-addressed directives to the batch's fingerprints."""
        fingerprints = [spec.fingerprint() for spec in specs]
        resolved = []
        for directive in self.directives:
            if directive.fingerprint is not None:
                resolved.append(directive)
                continue
            if directive.rank >= len(fingerprints):
                raise ConfigurationError(
                    f"chaos directive {directive.kind}@{directive.rank} "
                    f"addresses job {directive.rank}, but the batch has only "
                    f"{len(fingerprints)} job(s)")
            resolved.append(FaultDirective(
                kind=directive.kind, rank=directive.rank,
                attempt=directive.attempt, value=directive.value,
                fingerprint=fingerprints[directive.rank]))
        return FaultInjector(directives=tuple(resolved))

    # -- worker-side hooks -------------------------------------------------- #
    def fire(self, fingerprint: str, attempt: int) -> None:
        """Act on every directive matching this (fingerprint, attempt)."""
        for directive in self.directives:
            if directive.kind == "torn" or not directive.matches(fingerprint,
                                                                 attempt):
                continue
            if directive.kind == "raise":
                raise InjectedTransientError(
                    f"chaos: injected transient failure "
                    f"({fingerprint[:8]} attempt {attempt})")
            if directive.kind == "permanent":
                raise InjectedPermanentError(
                    f"chaos: injected permanent failure "
                    f"({fingerprint[:8]} attempt {attempt})")
            if directive.kind == "kill":
                # A hard kill: no exception, no cleanup — exactly what the
                # OOM killer or a SIGKILL does to a worker.
                os._exit(KILL_EXIT_CODE)
            if directive.kind == "hang":
                time.sleep(directive.value if directive.value is not None
                           else DEFAULT_HANG_SECONDS)

    def kills(self, fingerprint: str, attempt: int) -> bool:
        """Whether a ``kill`` directive fires for this (fingerprint, attempt).

        The parent uses this after a :class:`BrokenProcessPool` to attribute
        the crash to the spec that was *directed* to die, so innocent
        in-flight siblings are resubmitted without consuming a retry.
        """
        return any(d.kind == "kill" and d.matches(fingerprint, attempt)
                   for d in self.directives)

    # -- store-side hook ---------------------------------------------------- #
    def tear_next_write(self, fingerprint: str) -> bool:
        """Whether the next artifact write for ``fingerprint`` should tear.

        Write counts are tracked per process; a ``torn`` directive's
        ``attempt`` selects which write tears, so the retried write lands
        clean.
        """
        matching = [d for d in self.directives if d.kind == "torn"
                    and d.fingerprint is not None
                    and fingerprint.startswith(d.fingerprint)]
        if not matching:
            return False
        count = self._torn_counts.get(fingerprint, 0)
        self._torn_counts[fingerprint] = count + 1
        return any(d.attempt == count for d in matching)


# The process-wide active injector.  In pool workers it is installed by the
# executor's initializer; in the parent (and under serial execution) by the
# executor before the batch starts.  ``None`` — the production default —
# makes every hook a no-op.
_ACTIVE_INJECTOR: FaultInjector | None = None


def init_injector(injector: FaultInjector | None) -> None:
    """Install ``injector`` as this process's active chaos injector.

    Called from the pool initializer chain (workers) and from the executor
    (parent process) — injector state must travel through initializers, never
    through ambient parent globals, to stay spawn-safe.
    """
    global _ACTIVE_INJECTOR
    _ACTIVE_INJECTOR = injector


def active_injector() -> FaultInjector | None:
    """The injector installed in this process, if chaos is active."""
    return _ACTIVE_INJECTOR


def fault_injection_point(fingerprint: str, attempt: int) -> None:
    """Fire the active injector (no-op when chaos is off)."""
    if _ACTIVE_INJECTOR is not None:
        _ACTIVE_INJECTOR.fire(fingerprint, attempt)


# --------------------------------------------------------------------------- #
# Failure ledger
# --------------------------------------------------------------------------- #
def format_error(error: BaseException) -> str:
    """One-line ``Type: message`` rendering used in records and reports."""
    return f"{type(error).__name__}: {error}"


@dataclass
class FailureRecord:
    """Everything known about one permanently failed job."""

    fingerprint: str
    spec: dict[str, object]
    error_type: str
    error: str
    attempts: int
    tracebacks: tuple[str, ...] = ()
    elapsed_seconds: tuple[float, ...] = ()
    quarantined: bool = False

    @classmethod
    def from_failure(
        cls,
        spec: "RunSpec",
        fingerprint: str,
        error: BaseException,
        attempts: int,
        tracebacks: tuple[str, ...] = (),
        elapsed_seconds: tuple[float, ...] = (),
        quarantined: bool = False,
    ) -> "FailureRecord":
        return cls(
            fingerprint=fingerprint,
            spec=spec.to_dict(),
            error_type=type(error).__name__,
            error=str(error),
            attempts=attempts,
            tracebacks=tracebacks,
            elapsed_seconds=tuple(round(seconds, 6)
                                  for seconds in elapsed_seconds),
            quarantined=quarantined,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "spec": dict(self.spec),
            "error_type": self.error_type,
            "error": self.error,
            "attempts": self.attempts,
            "tracebacks": list(self.tracebacks),
            "elapsed_seconds": list(self.elapsed_seconds),
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, fingerprint: str,
                  payload: Mapping[str, object]) -> "FailureRecord":
        return cls(
            fingerprint=fingerprint,
            spec=dict(payload["spec"]),  # type: ignore[call-overload, arg-type]
            error_type=str(payload["error_type"]),
            error=str(payload["error"]),
            attempts=int(payload["attempts"]),  # type: ignore[arg-type]
            tracebacks=tuple(payload.get("tracebacks", ())),  # type: ignore[arg-type]
            elapsed_seconds=tuple(payload.get("elapsed_seconds", ())),  # type: ignore[arg-type]
            quarantined=bool(payload.get("quarantined", False)),
        )


def record_traceback(error: BaseException) -> str:
    """The full traceback text of ``error`` (ledger forensics)."""
    return "".join(traceback.format_exception(type(error), error,
                                              error.__traceback__))


class FailureLedger:
    """Persisted record of permanently failed jobs, next to the store.

    The ledger lives at ``<store-root>.failures.json`` — a *sibling* of the
    artifact directory, so store scans never mistake it for an artifact.  A
    resumed ``--keep-going`` campaign naturally retries exactly the jobs in
    the ledger: their siblings resume from the store, and a later success
    removes the entry.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.entries: dict[str, FailureRecord] = {}
        if self.path.exists():
            self._load()

    @classmethod
    def for_store(cls, store: "ArtifactStore") -> "FailureLedger":
        return cls(ledger_path(store.root))

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            warnings.warn(
                f"Ignoring corrupt failure ledger {self.path} "
                f"({format_error(error)}); starting a fresh ledger",
                stacklevel=3)
            return
        version = payload.get("format_version")
        if version != LEDGER_FORMAT_VERSION:
            raise ConfigurationError(
                f"Failure ledger {self.path} has format version {version!r}, "
                f"expected {LEDGER_FORMAT_VERSION}; delete it to start fresh")
        failures = payload.get("failures", {})
        if not isinstance(failures, dict):
            warnings.warn(
                f"Ignoring corrupt failure ledger {self.path} (bad 'failures' "
                "payload); starting a fresh ledger", stacklevel=3)
            return
        for fingerprint, entry in failures.items():
            try:
                self.entries[fingerprint] = FailureRecord.from_dict(
                    fingerprint, entry)
            except (KeyError, TypeError, ValueError) as error:
                warnings.warn(
                    f"Skipping corrupt ledger entry {fingerprint} "
                    f"({format_error(error)})", stacklevel=3)

    def record(self, failure: FailureRecord) -> None:
        self.entries[failure.fingerprint] = failure

    def discard(self, fingerprint: str) -> bool:
        """Remove ``fingerprint`` (a later attempt succeeded); True if present."""
        return self.entries.pop(fingerprint, None) is not None

    def to_dict(self) -> dict[str, object]:
        return {
            "format_version": LEDGER_FORMAT_VERSION,
            "failures": {fingerprint: self.entries[fingerprint].to_dict()
                         for fingerprint in sorted(self.entries)},
        }

    def save(self) -> Path:
        """Atomically persist the ledger (or remove the file when empty)."""
        if not self.entries:
            self.path.unlink(missing_ok=True)
            return self.path
        temporary = self.path.with_suffix(self.path.suffix + ".tmp")
        text = json.dumps(self.to_dict(), indent=1, sort_keys=True)
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.path)
        return self.path

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def fingerprints(self) -> tuple[str, ...]:
        return tuple(sorted(self.entries))


def ledger_path(store_root: str | os.PathLike[str]) -> Path:
    """``artifacts/`` → ``artifacts.failures.json`` (sibling of the store)."""
    root = Path(store_root)
    return root.parent / f"{root.name}.failures.json"
