"""Job-based experiment execution engine.

Every figure and table of the paper aggregates an embarrassingly parallel
grid of independent active-learning runs (dataset × method × seed × α).  This
module turns that grid into explicit jobs:

* :class:`RunSpec` — a frozen, hashable description of one run, including a
  fingerprint of the :class:`~repro.experiments.configs.ExperimentSettings`
  it is valid under, so results can be stored and looked up by content.
* :class:`SerialExecutor` / :class:`ParallelExecutor` — pluggable execution
  backends; the parallel one fans jobs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each keep
  their own dataset cache (one benchmark load per worker, not per job).
* :class:`ExperimentEngine` — ties an executor to an optional
  :class:`~repro.experiments.store.ArtifactStore`: completed runs are loaded
  from the store instead of re-executed (resume), fresh results are persisted.

The engine also hosts the execution primitives (`method_factory`,
`get_dataset`, `run_single`) that the figure/table layer builds on, keeping
the dependency order loop → engine/store → runner/figures/tables → CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.active.loop import (
    ActiveLearningLoop,
    ActiveLearningResult,
    IterationRecord,
)
from repro.active.oracle import LabelingOracle
from repro.active.selectors import (
    BattleshipConfig,
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    RandomSelector,
    Selector,
)
from repro._fingerprints import fingerprint_fields, fingerprint_payload
from repro._suggest import unknown_name_message
from repro.analysis.sanitizer import (
    DeterminismGuard,
    determinism_guard,
    sanitizer_enabled,
)
from repro.active.weak_supervision import WeakSupervisionMode, resolve_mode
from repro.data.dataset import EMDataset
from repro.datasets.registry import load_benchmark
from repro.evaluation.metrics import MatchingMetrics
from repro.exceptions import ConfigurationError
from repro.experiments.configs import GRID_ONLY_FIELDS, ExperimentSettings
from repro.experiments.faults import (
    POOL_KILL_QUARANTINE,
    FailureLedger,
    FailureRecord,
    FaultInjector,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
    active_injector,
    fault_injection_point,
    init_injector,
    ledger_path,
    record_traceback,
)
from repro.experiments.store import ArtifactStore, collect_corruption_warnings
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer
from repro.scenarios import Scenario, get_scenario

#: Name of the scenario reproducing the paper's evaluation exactly.
DEFAULT_SCENARIO = "perfect"

#: Selector factory signature: ``(alpha, beta) -> Selector``.
SelectorFactory = Callable[[float, float], Selector]

_METHOD_FACTORIES: dict[str, SelectorFactory] = {
    "battleship": lambda alpha, beta: BattleshipSelector(
        BattleshipConfig(alpha=alpha, beta=beta)),
    "dal": lambda alpha, beta: EntropySelector(),
    "dial": lambda alpha, beta: CommitteeSelector(),
    "random": lambda alpha, beta: RandomSelector(),
}

#: The active-learning methods compared throughout Section 5.
ACTIVE_LEARNING_METHODS: tuple[str, ...] = tuple(_METHOD_FACTORIES)

_DATASET_CACHE: dict[tuple[str, str, int, str], EMDataset] = {}


def method_factory(name: str) -> SelectorFactory:
    """Look up the selector factory for ``name``."""
    try:
        return _METHOD_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            unknown_name_message("method", name, _METHOD_FACTORIES)) from None


def get_dataset(name: str, settings: ExperimentSettings,
                scenario: Scenario | None = None) -> EMDataset:
    """Load (and cache) the benchmark ``name`` at the settings' scale.

    With a ``scenario``, the benchmark is generated under the scenario's
    corruption regime and pool skew.  The cache is keyed by the scenario's
    *dataset* fingerprint, so scenarios differing only in their oracle model
    share one cached benchmark, and the default scenario shares the cache
    entry of scenario-less callers.
    """
    variant = scenario.dataset_fingerprint() if scenario is not None else ""
    key = (name, settings.scale.name, settings.base_random_seed, variant)
    if key not in _DATASET_CACHE:
        if variant:
            _DATASET_CACHE[key] = scenario.build_dataset(
                name, scale=settings.scale,
                random_state=settings.base_random_seed)
        else:
            _DATASET_CACHE[key] = load_benchmark(
                name, scale=settings.scale,
                random_state=settings.base_random_seed)
    return _DATASET_CACHE[key]


#: Feature matrices keyed by the dataset-relevant fingerprint plus the
#: featurizer configuration (FeaturizerConfig is frozen, hence hashable).
#: Insertion-ordered (LRU on access) and bounded: dense matrices are far
#: larger than the datasets they derive from, so unlike the dataset cache
#: this one evicts.
_FEATURE_CACHE: dict[
    tuple[str, str, int, str, FeaturizerConfig], np.ndarray] = {}

#: Maximum number of feature matrices kept per process.  A figure grid
#: touches each (dataset, scenario-dataset, featurizer) combination many
#: times in a row, so a small bound keeps the hit rate at ~100% while
#: capping a scenario-matrix sweep's residency at a handful of matrices.
FEATURE_CACHE_MAX_ENTRIES = 8


def get_feature_matrix(name: str, settings: ExperimentSettings,
                       scenario: Scenario | None = None) -> np.ndarray:
    """Feature matrix of every candidate pair of benchmark ``name`` (cached).

    Mirrors :func:`get_dataset`: the cache key is the dataset-relevant
    fingerprint — ``(dataset, scale, base seed, scenario dataset-hash)`` —
    extended by the settings' :class:`FeaturizerConfig`, the only other input
    that changes the matrix (the featurizer is stateless).  A whole figure
    grid therefore featurizes each dataset once per worker process instead
    of once per run.  The cached matrix is marked read-only; consumers index
    into it, which copies, so sharing is safe across runs.  The cache is a
    bounded LRU (:data:`FEATURE_CACHE_MAX_ENTRIES`), so sweeps over many
    dataset variants do not accumulate dense matrices without limit.
    """
    variant = scenario.dataset_fingerprint() if scenario is not None else ""
    key = (name, settings.scale.name, settings.base_random_seed, variant,
           settings.featurizer_config)
    matrix = _FEATURE_CACHE.pop(key, None)
    if matrix is None:
        dataset = get_dataset(name, settings, scenario)
        matrix = PairFeaturizer(settings.featurizer_config).transform(dataset)
        matrix.setflags(write=False)
    _FEATURE_CACHE[key] = matrix  # (re)insert at the most-recent end
    while len(_FEATURE_CACHE) > FEATURE_CACHE_MAX_ENTRIES:
        _FEATURE_CACHE.pop(next(iter(_FEATURE_CACHE)))
    return matrix


def clear_dataset_cache() -> None:
    """Drop all cached benchmarks and their feature matrices (used by tests).

    Feature matrices are derived from cached datasets, so the two caches are
    invalidated together — a stale matrix for a freshly re-generated
    benchmark would be silently wrong.
    """
    _DATASET_CACHE.clear()
    _FEATURE_CACHE.clear()


def clear_feature_cache() -> None:
    """Drop only the cached feature matrices (used by tests)."""
    _FEATURE_CACHE.clear()


# --------------------------------------------------------------------------- #
# Run specifications and fingerprints
# --------------------------------------------------------------------------- #
def _canonical_json(payload: object) -> str:
    """Deterministic JSON used for fingerprinting."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def settings_fingerprint(settings: ExperimentSettings) -> str:
    """Stable hash of every settings field that influences a single run.

    Fields that only shape the *grid* (:data:`GRID_ONLY_FIELDS`: datasets,
    num_seeds, alphas, beta) are excluded: the grid is spelled out by the
    RunSpecs themselves, and a stored run stays valid when the surrounding
    sweep changes.  The payload is derived from the dataclass fields rather
    than enumerated by hand, so a new settings field is fingerprinted by
    construction — forgetting it is impossible.
    """
    fields = fingerprint_fields(ExperimentSettings, exclude=GRID_ONLY_FIELDS)
    payload = fingerprint_payload(settings, fields)
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one active-learning run.

    A RunSpec is hashable and usable as a dictionary key; its
    :meth:`fingerprint` keys the artifact store.  ``settings_hash`` binds the
    spec to the :class:`ExperimentSettings` it was enumerated under, so runs
    executed with different iteration counts or matcher hyper-parameters
    never collide in the store.  ``scenario`` names the robustness scenario
    (:mod:`repro.scenarios`) the run executes under; the store key includes
    the scenario *definition's* fingerprint, so editing a scenario
    invalidates exactly the artifacts it produced.
    """

    dataset: str
    method: str
    seed: int
    alpha: float
    beta: float
    weak_supervision: str
    settings_hash: str
    scenario: str = DEFAULT_SCENARIO

    @classmethod
    def create(
        cls,
        dataset: str,
        method: str,
        seed: int,
        alpha: float,
        beta: float,
        weak_supervision: WeakSupervisionMode | str,
        settings: ExperimentSettings,
        scenario: str = DEFAULT_SCENARIO,
    ) -> "RunSpec":
        """Build a spec, normalizing the mode and fingerprinting ``settings``."""
        scenario_name = get_scenario(scenario).name  # validate before freezing
        return cls(
            dataset=dataset,
            method=method,
            seed=int(seed),
            alpha=float(alpha),
            beta=float(beta),
            weak_supervision=resolve_mode(weak_supervision).value,
            settings_hash=settings_fingerprint(settings),
            scenario=scenario_name,
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (embedded in stored artifacts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            dataset=str(payload["dataset"]),
            method=str(payload["method"]),
            seed=int(payload["seed"]),
            alpha=float(payload["alpha"]),
            beta=float(payload["beta"]),
            weak_supervision=str(payload["weak_supervision"]),
            settings_hash=str(payload["settings_hash"]),
            scenario=str(payload.get("scenario", DEFAULT_SCENARIO)),
        )

    def fingerprint(self) -> str:
        """Content hash identifying this run in the artifact store.

        Besides the spec fields, the hash covers the referenced scenario's
        definition fingerprint — a stored artifact stays valid only as long
        as the scenario it ran under means the same thing.  Specs for the
        default (perfect) scenario hash the pre-scenario payload shape, so
        artifact stores written before the scenario axis existed resume
        without re-executing anything; the built-in perfect scenario is
        definitionally immutable, so no invalidation is lost.
        """
        payload = self.to_dict()
        if self.scenario == DEFAULT_SCENARIO:
            del payload["scenario"]
        else:
            payload["scenario_fingerprint"] = (
                get_scenario(self.scenario).fingerprint())
        return hashlib.sha256(
            _canonical_json(payload).encode("utf-8")).hexdigest()[:24]


def run_single(
    dataset: EMDataset,
    selector: Selector,
    settings: ExperimentSettings,
    random_state: int,
    weak_supervision: WeakSupervisionMode | str = WeakSupervisionMode.SELECTOR,
    oracle: LabelingOracle | None = None,
    features: np.ndarray | None = None,
) -> ActiveLearningResult:
    """One active-learning run with the settings' iteration/budget counts.

    ``oracle`` overrides the loop's default perfect oracle (the scenario
    subsystem builds noisy/abstaining annotators here).  ``features`` is an
    optional precomputed feature matrix for all candidate pairs of
    ``dataset`` (see :func:`get_feature_matrix`); runs sharing a dataset can
    then skip per-run featurization entirely.
    """
    loop = ActiveLearningLoop(
        dataset=dataset,
        selector=selector,
        oracle=oracle,
        matcher_config=settings.matcher_config,
        featurizer_config=settings.featurizer_config,
        iterations=settings.iterations,
        budget_per_iteration=settings.budget_per_iteration,
        seed_size=settings.seed_size,
        weak_supervision=weak_supervision,
        random_state=random_state,
        features=features,
    )
    return loop.run()


def execute_spec(spec: RunSpec, settings: ExperimentSettings) -> ActiveLearningResult:
    """Execute one :class:`RunSpec` under ``settings``.

    The feature matrix comes from the process-wide cache, so the first run
    touching a ``(dataset, scenario-dataset, featurizer)`` combination pays
    for featurization and every later run reuses the matrix.

    With ``REPRO_SANITIZE=1`` in the environment, the whole run executes
    under :func:`repro.analysis.determinism_guard`: any code path consuming
    the global RNGs fails the run loudly, and the shared feature matrix is
    asserted to still be read-only afterwards.
    """
    if sanitizer_enabled():
        with determinism_guard(label=f"run {spec.dataset}/{spec.method}"
                                     f"/seed={spec.seed}") as guard:
            result = _execute_spec_unguarded(spec, settings, guard)
        return result
    return _execute_spec_unguarded(spec, settings)


def _execute_spec_unguarded(
    spec: RunSpec,
    settings: ExperimentSettings,
    guard: "DeterminismGuard | None" = None,
) -> ActiveLearningResult:
    scenario = get_scenario(spec.scenario)
    selector = method_factory(spec.method)(spec.alpha, spec.beta)
    dataset = get_dataset(spec.dataset, settings, scenario)
    oracle = scenario.build_oracle(dataset, spec.seed)
    features = get_feature_matrix(spec.dataset, settings, scenario)
    result = run_single(dataset, selector, settings, spec.seed,
                        spec.weak_supervision, oracle=oracle, features=features)
    if guard is not None and features is not None:
        guard.assert_read_only(
            features, name=f"feature matrix of {spec.dataset}")
    return result


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
class SerialExecutor:
    """Execute jobs one after another in the calling process.

    ``execute`` yields ``(spec, result)`` pairs as runs complete so the
    engine can persist each run before the next one starts.

    With a :class:`~repro.experiments.faults.RetryPolicy` the executor
    retries transient failures in place (deterministic backoff, fault
    injection honored); per-job *timeouts* and worker-crash recovery need
    process isolation and are therefore exclusive to
    :class:`ParallelExecutor`.  ``keep_going`` records permanent failures in
    ``last_failures`` instead of aborting the sweep.
    """

    def __init__(
        self,
        retry_policy: RetryPolicy | None = None,
        keep_going: bool = False,
        injector: FaultInjector | None = None,
    ) -> None:
        if retry_policy is None and (keep_going or injector is not None):
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.keep_going = keep_going
        self.injector = injector
        self.last_failures: list[FailureRecord] = []
        self.last_retries = 0
        if retry_policy is not None and retry_policy.timeout is not None:
            warnings.warn(
                "SerialExecutor cannot enforce per-job timeouts (jobs run in "
                "the calling process); use ParallelExecutor for --timeout",
                stacklevel=2)

    def execute(
        self, specs: Sequence[RunSpec], settings: ExperimentSettings,
    ) -> Iterator[tuple[RunSpec, ActiveLearningResult]]:
        self.last_failures = []
        self.last_retries = 0
        if self.retry_policy is None:
            for spec in specs:
                yield spec, execute_spec(spec, settings)
            return
        yield from self._execute_with_policy(specs, settings)

    def _execute_with_policy(
        self, specs: Sequence[RunSpec], settings: ExperimentSettings,
    ) -> Iterator[tuple[RunSpec, ActiveLearningResult]]:
        policy = self.retry_policy
        assert policy is not None
        injector = (self.injector.resolve(list(specs))
                    if self.injector is not None else None)
        init_injector(injector)
        try:
            for spec in specs:
                fingerprint = spec.fingerprint()
                failed = 0
                tracebacks: list[str] = []
                elapsed: list[float] = []
                while True:
                    started = time.monotonic()
                    try:
                        if injector is not None:
                            fault_injection_point(fingerprint, failed)
                        result = execute_spec(spec, settings)
                    except Exception as error:
                        elapsed.append(time.monotonic() - started)
                        tracebacks.append(record_traceback(error))
                        failed += 1
                        if policy.retryable(error, failed):
                            self.last_retries += 1
                            time.sleep(policy.backoff_seconds(
                                fingerprint, failed - 1))
                            continue
                        self.last_failures.append(FailureRecord.from_failure(
                            spec, fingerprint, error, failed,
                            tuple(tracebacks), tuple(elapsed)))
                        if self.keep_going:
                            break
                        raise
                    else:
                        yield spec, result
                        break
        finally:
            init_injector(None)


# Worker-process state for ParallelExecutor, set by the pool initializer.
_WORKER_SETTINGS: ExperimentSettings | None = None


def _init_worker(settings: ExperimentSettings,
                 scenarios: tuple[Scenario, ...] = (),
                 injector: FaultInjector | None = None) -> None:
    """Pool initializer: hand each worker the settings its jobs run under.

    Workers keep their own dataset cache (``get_dataset`` fills it on the
    first job touching a benchmark), so loading is amortized per worker, not
    per job, without eagerly loading benchmarks a worker never sees.

    ``scenarios`` carries the definitions of every scenario the batch
    references: under a ``spawn``/``forkserver`` start method the worker's
    registry re-imports with only the built-ins, so user-registered
    scenarios must travel with the pool (Scenario is frozen and picklable by
    design).  ``injector`` ships the batch's resolved chaos injector the
    same way — injection state must travel through the initializer, never
    through ambient parent globals, to stay spawn-safe.
    """
    global _WORKER_SETTINGS
    _WORKER_SETTINGS = settings
    from repro.scenarios import register_scenario
    for scenario in scenarios:
        register_scenario(scenario, replace=True)
    init_injector(injector)


def _execute_in_worker(spec: RunSpec, attempt: int = 0) -> ActiveLearningResult:
    """Top-level (picklable) job body run inside a pool worker."""
    assert _WORKER_SETTINGS is not None, "worker initializer did not run"
    if active_injector() is not None:
        fault_injection_point(spec.fingerprint(), attempt)
    return execute_spec(spec, _WORKER_SETTINGS)


class ParallelExecutor:
    """Fan jobs out over a :class:`ProcessPoolExecutor`.

    ``execute`` yields ``(spec, result)`` pairs in *completion* order, so the
    engine persists every finished run immediately — an interrupted parallel
    sweep resumes from the completed runs, not just a submission-order
    prefix.  When a job fails (or the interrupt lands) while runs are
    executing, queued jobs are cancelled and finished siblings are still
    yielded for persistence; only a failure raised by the *consumer* while
    it handles a result (which closes the generator) can drop
    completed-but-unyielded siblings.  Curves stay bit-identical to serial
    execution because results are keyed by spec and every run is seeded
    independently of the order in which its siblings finish.

    With a :class:`~repro.experiments.faults.RetryPolicy` the executor runs
    in fault-tolerant mode: transient failures are resubmitted with
    deterministic backoff, jobs exceeding ``policy.timeout`` are cancelled
    by tearing down (and rebuilding) the worker pool — a
    :class:`ProcessPoolExecutor` cannot preempt a single running task — and
    a :class:`BrokenProcessPool` (worker OOM-killed or crashed) rebuilds the
    pool and resubmits the in-flight specs, quarantining any spec that
    kills the pool :data:`~repro.experiments.faults.POOL_KILL_QUARANTINE`
    times.  ``keep_going`` turns permanent failures into ``last_failures``
    records instead of aborting the sweep.
    """

    def __init__(
        self,
        jobs: int = 2,
        retry_policy: RetryPolicy | None = None,
        keep_going: bool = False,
        injector: FaultInjector | None = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if retry_policy is None and (keep_going or injector is not None):
            retry_policy = RetryPolicy()
        self.retry_policy = retry_policy
        self.keep_going = keep_going
        self.injector = injector
        self.last_failures: list[FailureRecord] = []
        self.last_retries = 0

    def execute(
        self, specs: Sequence[RunSpec], settings: ExperimentSettings,
    ) -> Iterator[tuple[RunSpec, ActiveLearningResult]]:
        self.last_failures = []
        self.last_retries = 0
        if not specs:
            return
        if self.retry_policy is not None:
            # Fault tolerance needs process isolation even for one job —
            # per-job timeouts and kill recovery cannot work in-process.
            yield from self._execute_with_policy(specs, settings)
            return
        if self.jobs == 1 or len(specs) == 1:
            yield from SerialExecutor().execute(specs, settings)
            return
        batch_scenarios = tuple(
            {spec.scenario: get_scenario(spec.scenario) for spec in specs}
            .values())
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(specs)),
            initializer=_init_worker,
            initargs=(settings, batch_scenarios),
        ) as pool:
            futures = {pool.submit(_execute_in_worker, spec): spec
                       for spec in specs}
            consumed: set = set()
            try:
                for future in as_completed(futures):
                    consumed.add(future)
                    yield futures[future], future.result()
            except GeneratorExit:
                # The consumer stopped early; don't run what it won't see.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            except BaseException:
                # One run failed, or the sweep was interrupted (Ctrl-C).
                # Cancel the queued jobs, wait out the few still running
                # (on SIGINT the workers are interrupted too, so this is
                # short), and hand every salvageable finished run to the
                # engine for persistence before the error propagates —
                # otherwise a resume would re-execute runs that completed.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, spec in futures.items():
                    if (future not in consumed and future.done()
                            and not future.cancelled()
                            and future.exception() is None):
                        yield spec, future.result()
                raise

    def _new_pool(
        self,
        workers: int,
        settings: ExperimentSettings,
        batch_scenarios: tuple[Scenario, ...],
        injector: FaultInjector | None,
    ) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(settings, batch_scenarios, injector),
        )

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a pool whose workers may be hung, dead, or healthy.

        ``shutdown`` alone would join the workers, which blocks forever on a
        hung job — so the worker processes are terminated outright.  The
        process table is a private attribute; if a future interpreter hides
        it, the fallback is a plain (potentially blocking) shutdown.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()
        for process in list(processes.values()):
            process.join(timeout=5.0)
            if process.is_alive():
                process.kill()

    def _execute_with_policy(
        self, specs: Sequence[RunSpec], settings: ExperimentSettings,
    ) -> Iterator[tuple[RunSpec, ActiveLearningResult]]:
        """Fault-tolerant scheduling loop (active when a policy is set).

        A sliding window of at most ``workers`` jobs is kept in flight, so a
        job's submit time approximates its start time and the per-job
        timeout can be enforced from the parent.  Completion, failure, and
        retry are all driven off :func:`concurrent.futures.wait`; retries
        re-enter the window after their deterministic backoff without ever
        blocking jobs that are ready to run.
        """
        policy = self.retry_policy
        assert policy is not None
        keep_going = self.keep_going
        injector = (self.injector.resolve(list(specs))
                    if self.injector is not None else None)
        batch_scenarios = tuple(
            {spec.scenario: get_scenario(spec.scenario) for spec in specs}
            .values())
        workers = min(self.jobs, len(specs))
        fingerprints = {spec: spec.fingerprint() for spec in specs}
        failed_attempts = {spec: 0 for spec in specs}
        pool_kills = {spec: 0 for spec in specs}
        tracebacks: dict[RunSpec, list[str]] = {spec: [] for spec in specs}
        elapsed: dict[RunSpec, list[float]] = {spec: [] for spec in specs}
        ready: deque[RunSpec] = deque(specs)
        waiting: list[tuple[float, RunSpec]] = []
        running: dict[Future[ActiveLearningResult],
                      tuple[RunSpec, float]] = {}
        abort: BaseException | None = None
        # Parent-side injector: the store's torn-write hook fires in this
        # process while the engine persists results.
        init_injector(injector)
        pool = self._new_pool(workers, settings, batch_scenarios, injector)

        def fail_attempt(spec: RunSpec, error: BaseException,
                         seconds: float) -> bool:
            """Record one failed attempt; True if the spec will retry."""
            failed_attempts[spec] += 1
            tracebacks[spec].append(record_traceback(error))
            elapsed[spec].append(seconds)
            quarantined = pool_kills[spec] >= POOL_KILL_QUARANTINE
            if not quarantined and policy.retryable(error,
                                                    failed_attempts[spec]):
                delay = policy.backoff_seconds(fingerprints[spec],
                                               failed_attempts[spec] - 1)
                waiting.append((time.monotonic() + delay, spec))
                self.last_retries += 1
                return True
            self.last_failures.append(FailureRecord.from_failure(
                spec, fingerprints[spec], error, failed_attempts[spec],
                tuple(tracebacks[spec]), tuple(elapsed[spec]),
                quarantined=quarantined))
            return False

        def recover(victims: dict[RunSpec, BaseException] | None,
                    ) -> tuple[list[tuple[RunSpec, ActiveLearningResult]],
                               BaseException | None]:
            """Tear the pool down, classify in-flight specs, rebuild.

            ``victims`` maps the specs blamed for the teardown to their
            synthetic errors (timeouts); ``None`` means a worker crash, in
            which case the blame goes to the spec a chaos ``kill`` directive
            targeted — or, for real crashes, conservatively to every
            in-flight spec.  Innocent in-flight specs are resubmitted
            without consuming a retry.  Returns salvageable finished
            results and the error to abort with (if any).
            """
            nonlocal pool
            salvaged: list[tuple[RunSpec, ActiveLearningResult]] = []
            fatal: BaseException | None = None
            inflight: list[tuple[RunSpec, float]] = []
            now = time.monotonic()
            for future, (spec, started) in running.items():
                finished = future.done() and not future.cancelled()
                error = future.exception() if finished else None
                if finished and error is None:
                    salvaged.append((spec, future.result()))
                elif error is not None and not isinstance(error,
                                                          BrokenProcessPool):
                    # A plain failure that completed just as the pool broke.
                    if (not fail_attempt(spec, error, now - started)
                            and not keep_going and fatal is None):
                        fatal = error
                else:
                    inflight.append((spec, started))
            running.clear()
            if victims is None:
                blamed = []
                if injector is not None:
                    blamed = [spec for spec, _ in inflight
                              if injector.kills(fingerprints[spec],
                                                failed_attempts[spec])]
                if not blamed:
                    blamed = [spec for spec, _ in inflight]
                victims = {
                    spec: WorkerCrashError(
                        f"worker pool broke while job "
                        f"{fingerprints[spec][:8]} was in flight")
                    for spec in blamed}
                for spec in victims:
                    pool_kills[spec] += 1
            for spec, started in inflight:
                if spec in victims:
                    if (not fail_attempt(spec, victims[spec], now - started)
                            and not keep_going and fatal is None):
                        fatal = victims[spec]
                else:
                    ready.append(spec)
            self._terminate_pool(pool)
            pool = self._new_pool(workers, settings, batch_scenarios,
                                  injector)
            return salvaged, fatal

        try:
            while ready or waiting or running:
                now = time.monotonic()
                if waiting:
                    due = [entry for entry in waiting if entry[0] <= now]
                    if due:
                        waiting = [entry for entry in waiting
                                   if entry[0] > now]
                        for _, spec in sorted(
                                due, key=lambda entry: fingerprints[entry[1]]):
                            ready.append(spec)
                broken_on_submit = False
                while ready and len(running) < workers:
                    spec = ready.popleft()
                    try:
                        future = pool.submit(_execute_in_worker, spec,
                                             failed_attempts[spec])
                    except BrokenProcessPool:
                        ready.appendleft(spec)
                        broken_on_submit = True
                        break
                    running[future] = (spec, time.monotonic())
                if broken_on_submit:
                    salvaged, fatal = recover(None)
                    for item in salvaged:
                        yield item
                    if fatal is not None:
                        abort = fatal
                        break
                    continue
                if not running:
                    if waiting:
                        next_ready = min(entry[0] for entry in waiting)
                        time.sleep(max(0.0, next_ready - time.monotonic()))
                    continue
                deadlines: list[float] = []
                if policy.timeout is not None:
                    deadlines.extend(started + policy.timeout - now
                                     for _, started in running.values())
                deadlines.extend(entry[0] - now for entry in waiting)
                timeout = max(0.0, min(deadlines)) if deadlines else None
                done, _ = wait(set(running), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in sorted(
                        done, key=lambda f: fingerprints[running[f][0]]):
                    spec, started = running.pop(future)
                    seconds = time.monotonic() - started
                    error = future.exception()
                    if error is None:
                        yield spec, future.result()
                    elif isinstance(error, BrokenProcessPool):
                        running[future] = (spec, started)
                        pool_broken = True
                        break
                    elif not fail_attempt(spec, error, seconds) \
                            and not keep_going:
                        abort = error
                        break
                if abort is not None:
                    break
                if pool_broken:
                    salvaged, fatal = recover(None)
                    for item in salvaged:
                        yield item
                    if fatal is not None:
                        abort = fatal
                        break
                    continue
                if policy.timeout is not None:
                    now = time.monotonic()
                    overdue = {
                        spec: JobTimeoutError(
                            f"job {fingerprints[spec][:8]} exceeded the "
                            f"{policy.timeout:g}s per-job timeout")
                        for _, (spec, started) in running.items()
                        if now - started >= policy.timeout}
                    if overdue:
                        salvaged, fatal = recover(overdue)
                        for item in salvaged:
                            yield item
                        if fatal is not None:
                            abort = fatal
                            break
            if abort is not None:
                # Fail-fast abort: wait out still-running siblings, hand
                # every salvageable finished run to the engine for
                # persistence, then propagate.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, (spec, _started) in running.items():
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        yield spec, future.result()
                raise abort
        finally:
            init_injector(None)
            self._terminate_pool(pool)

    def map_indexed(
        self,
        fn: Callable,
        items: Sequence,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> list:
        """Run ``fn`` over ``items`` on the pool; results in *item* order.

        The generic fan-out entry point for embarrassingly parallel work
        that is not an active-learning run — the sharded blocking index
        build (:mod:`repro.blocking.sharding`) is the first consumer.  It
        reuses the executor's spawn-safe initializer pattern: per-worker
        state travels once through ``initializer``/``initargs`` instead of
        once per task, and completion order never leaks into the result
        order.  ``fn``, ``initializer``, and every item must be picklable
        (top-level callables).

        Failure semantics match :meth:`execute`: when one shard raises, the
        queued shards are cancelled and the first error propagates — the
        context manager alone would silently run every queued shard to
        completion before re-raising, wasting a full pool's worth of work.
        """
        items = list(items)
        if not items:
            return []
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(items)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = {pool.submit(fn, item): index
                       for index, item in enumerate(items)}
            results: list = [None] * len(items)
            try:
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            except BaseException:
                pool.shutdown(wait=True, cancel_futures=True)
                raise
        return results


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
@dataclass
class EngineReport:
    """How the jobs of one :meth:`ExperimentEngine.run` call were satisfied."""

    executed: int = 0
    from_store: int = 0
    from_memory: int = 0
    #: Jobs a plan-only engine *would* execute (dry runs never execute).
    planned: int = 0
    #: Failed attempts that were resubmitted under the retry policy.
    retried: int = 0
    #: Jobs that failed permanently (recorded in the failure ledger).
    failed: int = 0

    @property
    def cached(self) -> int:
        """Runs satisfied without executing (store loads + memory hits)."""
        return self.from_store + self.from_memory

    @property
    def total(self) -> int:
        return self.executed + self.cached + self.planned

    def merge(self, other: "EngineReport") -> None:
        self.executed += other.executed
        self.from_store += other.from_store
        self.from_memory += other.from_memory
        self.planned += other.planned
        self.retried += other.retried
        self.failed += other.failed


class ExperimentEngine:
    """Resolve RunSpecs to results through an executor and an artifact store.

    Parameters
    ----------
    settings:
        The experiment settings every spec must have been enumerated under
        (mismatching specs are rejected — they would silently describe a
        different run).
    executor:
        Execution backend; defaults to :class:`SerialExecutor`.
    store:
        Optional :class:`ArtifactStore`.  Specs with a stored result are
        *not* re-executed; each fresh result is persisted as soon as its run
        finishes, so an interrupted sweep resumes from the completed runs.
    plan_only:
        Dry-run mode: :meth:`run` never executes (or even parses stored
        artifacts — it only checks their existence) and answers every spec
        with a placeholder result shaped like a real one, so the figure and
        table builders enumerate their full grids without side effects.  The
        specs that *would* have executed accumulate in :meth:`planned_specs`.
    manifest_id:
        Optional manifest identity (``name@hash``) stamped into every
        artifact this engine persists, tying stored runs back to the
        manifest that declared them.

    Results are additionally cached in memory for the engine's lifetime, so
    figure/table builders sharing RunSpecs within one invocation (e.g.
    Figure 5 and Table 6 both need battleship at α = 0.5) execute them once
    even without a store.  ``last_report`` describes the most recent
    :meth:`run` call; ``total_report`` accumulates over the lifetime.
    """

    def __init__(
        self,
        settings: ExperimentSettings,
        executor: SerialExecutor | ParallelExecutor | None = None,
        store: ArtifactStore | None = None,
        plan_only: bool = False,
        manifest_id: str | None = None,
    ) -> None:
        self.settings = settings
        self.executor = executor or SerialExecutor()
        self.store = store
        self.plan_only = plan_only
        self.manifest_id = manifest_id
        self.last_report = EngineReport()
        self.total_report = EngineReport()
        self._memory: dict[RunSpec, ActiveLearningResult] = {}
        self._planned: dict[RunSpec, None] = {}
        self._plan_store_hits: dict[RunSpec, None] = {}
        self._put_retries = 0

    def cached_results(self) -> dict[RunSpec, ActiveLearningResult]:
        """Copy of every result this engine currently holds in memory."""
        return dict(self._memory)

    def adopt_results(
        self, results: Mapping[RunSpec, ActiveLearningResult],
    ) -> None:
        """Seed the engine with results produced elsewhere (same settings).

        Adopted results are persisted to the store (they are fresh, valid
        artifacts) and served from memory by later :meth:`run` calls instead
        of re-executing their specs.  Used e.g. by the figure-6 builder to
        hand its dedicated serial timing runs back to the shared engine.
        """
        expected_hash = settings_fingerprint(self.settings)
        for spec, result in results.items():
            if spec.settings_hash != expected_hash:
                raise ConfigurationError(
                    f"Cannot adopt result for {spec.dataset}/{spec.method}: it "
                    f"was produced under settings {spec.settings_hash}, but "
                    f"this engine runs {expected_hash}")
            if self.store is not None:
                self.store.put(spec, result, manifest=self.manifest_id)
            self._memory[spec] = result

    def planned_specs(self) -> tuple[RunSpec, ...]:
        """Specs a plan-only engine would execute, in first-seen order."""
        return tuple(self._planned)

    def planned_cached_specs(self) -> tuple[RunSpec, ...]:
        """Specs a plan-only engine found already in the store (deduplicated)."""
        return tuple(self._plan_store_hits)

    def _placeholder_result(self, spec: RunSpec) -> ActiveLearningResult:
        """A zero-metric result shaped exactly like a real one.

        Dry runs hand these to the figure/table builders, whose curve
        averaging requires every run of a group to share the settings'
        checkpoint grid — so the placeholder walks ``labeled_checkpoints``
        the way a real run would.
        """
        zero = MatchingMetrics(precision=0.0, recall=0.0, f1=0.0,
                               num_examples=0)
        records = [
            IterationRecord(iteration=iteration, num_labeled=labeled,
                            num_weak=0, num_labeled_positives=0,
                            test_metrics=zero, train_seconds=0.0,
                            selection_seconds=0.0)
            for iteration, labeled in enumerate(self.settings.labeled_checkpoints)
        ]
        return ActiveLearningResult(dataset_name=spec.dataset,
                                    selector_name=spec.method,
                                    records=records)

    def _plan(self, ordered: list[RunSpec]) -> dict[RunSpec, ActiveLearningResult]:
        """Dry-run resolution: existence checks and placeholders only."""
        results: dict[RunSpec, ActiveLearningResult] = {}
        from_store = planned = 0
        for spec in ordered:
            if self.store is not None and spec in self.store:
                self._plan_store_hits[spec] = None
                from_store += 1
            else:
                self._planned[spec] = None
                planned += 1
            results[spec] = self._placeholder_result(spec)
        self.last_report = EngineReport(from_store=from_store,
                                        planned=planned)
        self.total_report.merge(self.last_report)
        return results

    def run(self, specs: Iterable[RunSpec]) -> dict[RunSpec, ActiveLearningResult]:
        """Execute (or load) every spec; returns results keyed by spec."""
        ordered = list(dict.fromkeys(specs))
        expected_hash = settings_fingerprint(self.settings)
        for spec in ordered:
            if spec.settings_hash != expected_hash:
                raise ConfigurationError(
                    f"RunSpec {spec.dataset}/{spec.method} was enumerated under "
                    f"settings {spec.settings_hash}, but this engine runs "
                    f"{expected_hash}; rebuild the specs from the engine's settings")

        if self.plan_only:
            return self._plan(ordered)

        results: dict[RunSpec, ActiveLearningResult] = {}
        pending: list[RunSpec] = []
        from_store = from_memory = 0
        with collect_corruption_warnings("resume"):
            for spec in ordered:
                if spec in self._memory:
                    results[spec] = self._memory[spec]
                    from_memory += 1
                    continue
                stored = self.store.get(spec) if self.store is not None else None
                if stored is not None:
                    self._memory[spec] = stored
                    results[spec] = stored
                    from_store += 1
                else:
                    pending.append(spec)

        executed = 0
        executed_fingerprints: list[str] = []
        self._put_retries = 0
        try:
            for spec, result in self.executor.execute(pending, self.settings):
                # Memory first: if the store write fails, the result still
                # survives for this engine's lifetime (a same-process retry
                # won't re-execute the run).
                self._memory[spec] = result
                results[spec] = result
                executed += 1
                if self.store is not None:
                    executed_fingerprints.append(self._persist(spec, result))
        finally:
            failures = list(getattr(self.executor, "last_failures", ()))
            retried = (int(getattr(self.executor, "last_retries", 0))
                       + self._put_retries)
            self.last_report = EngineReport(executed=executed,
                                            from_store=from_store,
                                            from_memory=from_memory,
                                            retried=retried,
                                            failed=len(failures))
            self.total_report.merge(self.last_report)
            if self.store is not None:
                self._update_ledger(failures, executed_fingerprints)
        return results

    def _persist(self, spec: RunSpec, result: ActiveLearningResult) -> str:
        """Persist one result, retrying transient (e.g. torn) write failures.

        Reuses the executor's retry policy — the same backoff and attempt
        budget that govern job execution govern artifact publication, so an
        injected torn write self-heals instead of aborting the sweep.
        Returns the spec's fingerprint.
        """
        assert self.store is not None
        policy: RetryPolicy | None = getattr(self.executor, "retry_policy",
                                             None)
        fingerprint = spec.fingerprint()
        failed = 0
        while True:
            try:
                self.store.put(spec, result, manifest=self.manifest_id)
                return fingerprint
            except Exception as error:
                failed += 1
                if policy is None or not policy.retryable(error, failed):
                    raise
                self._put_retries += 1
                time.sleep(policy.backoff_seconds(f"put:{fingerprint}",
                                                  failed - 1))

    def _update_ledger(self, failures: list[FailureRecord],
                       executed_fingerprints: list[str]) -> None:
        """Sync the failure ledger next to the store after a run.

        Fresh permanent failures are recorded; fingerprints that executed
        successfully are discarded (a resumed campaign that finally
        succeeded must not keep reporting the job as failed).  The ledger
        file is only touched when something changed, and an empty ledger is
        removed outright.
        """
        assert self.store is not None
        ledger_file = ledger_path(self.store.root)
        if not failures and not ledger_file.exists():
            return
        ledger = FailureLedger(ledger_file)
        changed = False
        for record in failures:
            ledger.record(record)
            changed = True
        for fingerprint in executed_fingerprints:
            changed = ledger.discard(fingerprint) or changed
        if changed:
            ledger.save()
