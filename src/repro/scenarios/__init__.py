"""Scenario matrix: robustness as a first-class, engine-sweepable axis.

A :class:`Scenario` bundles an oracle model (who labels, and how well), a
corruption regime (how dirty the two sources are), and an optional pool-skew
transform (what the unlabeled pool looks like).  The experiment engine sweeps
scenario × dataset × selector grids exactly like any other grid — with
parallel execution and artifact-store resume — because the scenario name is
part of every :class:`~repro.experiments.engine.RunSpec` and the scenario
definition's fingerprint is folded into the spec's store key.
"""

from repro.scenarios.base import (
    ORACLE_KINDS,
    CorruptionRegime,
    OracleModel,
    Scenario,
)
from repro.scenarios.registry import (
    BENCHMARK_REGIME,
    CLEAN_REGIME,
    DIRTY_REGIME,
    VERY_DIRTY_REGIME,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_scenarios,
)

__all__ = [
    "BENCHMARK_REGIME",
    "CLEAN_REGIME",
    "CorruptionRegime",
    "DIRTY_REGIME",
    "ORACLE_KINDS",
    "OracleModel",
    "Scenario",
    "VERY_DIRTY_REGIME",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "resolve_scenarios",
]
