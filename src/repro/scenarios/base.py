"""The frozen :class:`Scenario` triple and its two declarative axes.

A scenario answers, for one active-learning run, three questions the paper's
evaluation fixes to a single choice:

1.  *Who labels?* — an :class:`OracleModel` (perfect, uniformly noisy,
    class-conditionally noisy, or abstaining annotator);
2.  *How dirty is the data?* — a :class:`CorruptionRegime` overriding the
    source-noise profiles the benchmark is generated with;
3.  *What does the pool look like?* — an optional pool-skew transform from
    :mod:`repro.datasets.transforms`.

Every piece is a frozen dataclass so a scenario is hashable, picklable
(parallel workers receive it inside a RunSpec), and content-addressable: the
:meth:`Scenario.fingerprint` feeds the artifact-store key of every run
executed under the scenario, so changing a scenario definition invalidates
exactly the stored runs it produced.

Seeding policy: the scenario derives every random stream it owns (oracle
flips, abstention masks, pool skew) from crc32-mixed seeds that include the
scenario name, then hands them to components which spawn their own child
generators (:func:`repro._rng.spawn_rng`).  The streams are therefore
independent of the active-learning loop's seed/selection streams — running
the *perfect* scenario is bit-identical to running with no scenario at all.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro._fingerprints import fingerprint_fields, fingerprint_payload
from repro.active.oracle import (
    AbstainingOracle,
    ClassConditionalNoisyOracle,
    LabelingOracle,
    NoisyOracle,
)
from repro.config import ScaleProfile
from repro.data.dataset import EMDataset
from repro.datasets.base import BenchmarkSpec, build_benchmark
from repro.datasets.corruptions import CorruptionConfig
from repro.datasets.registry import benchmark_spec
from repro.datasets.transforms import apply_pool_transform, available_pool_transforms
from repro.exceptions import ConfigurationError

#: Oracle kinds an :class:`OracleModel` can describe.
ORACLE_KINDS = ("perfect", "noisy", "class-conditional", "abstaining")


def _mixed_seed(*parts: object) -> int:
    """Deterministic 32-bit seed derived from string/number parts."""
    text = ":".join(str(part) for part in parts)
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class OracleModel:
    """Declarative description of the annotator answering label queries.

    Attributes
    ----------
    kind:
        One of :data:`ORACLE_KINDS`.
    flip_probability:
        Uniform answer-flip probability (``noisy`` kind).
    false_positive_rate / false_negative_rate:
        Class-conditional flip rates (``class-conditional`` kind).
    abstain_probability:
        Fraction of pairs the annotator declines (``abstaining`` kind).
    """

    kind: str = "perfect"
    flip_probability: float = 0.0
    false_positive_rate: float = 0.0
    false_negative_rate: float = 0.0
    abstain_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ORACLE_KINDS:
            raise ConfigurationError(
                f"Unknown oracle kind {self.kind!r}; expected one of {ORACLE_KINDS}")

    @property
    def noise_level(self) -> float:
        """Scalar noise magnitude (the x-axis of the robustness figure)."""
        if self.kind == "noisy":
            return self.flip_probability
        if self.kind == "class-conditional":
            return max(self.false_positive_rate, self.false_negative_rate)
        if self.kind == "abstaining":
            return self.abstain_probability
        return 0.0

    def build(self, dataset: EMDataset,
              rng: np.random.Generator) -> LabelingOracle | None:
        """Instantiate the oracle for ``dataset`` (``None`` means perfect).

        Returning ``None`` for the perfect kind lets the loop fall back to
        its default :class:`~repro.active.oracle.PerfectOracle`, keeping
        perfect-scenario runs bit-identical to scenario-less ones.
        """
        if self.kind == "perfect":
            return None
        if self.kind == "noisy":
            return NoisyOracle(dataset, flip_probability=self.flip_probability,
                               random_state=rng)
        if self.kind == "class-conditional":
            return ClassConditionalNoisyOracle(
                dataset,
                false_positive_rate=self.false_positive_rate,
                false_negative_rate=self.false_negative_rate,
                random_state=rng)
        return AbstainingOracle(dataset,
                                abstain_probability=self.abstain_probability,
                                random_state=rng)


@dataclass(frozen=True)
class CorruptionRegime:
    """Override of the source-noise profiles a benchmark is generated with.

    ``left``/``right`` replace the benchmark's own corruption configs when
    given; ``scale_factor`` then multiplies every corruption probability
    (:meth:`CorruptionConfig.scaled`).  The default regime — no overrides,
    factor 1 — reproduces each benchmark exactly as its spec defines it.
    """

    name: str = "benchmark"
    left: CorruptionConfig | None = None
    right: CorruptionConfig | None = None
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_factor < 0:
            raise ConfigurationError(
                f"scale_factor must be >= 0, got {self.scale_factor}")

    def apply_to(self, spec: BenchmarkSpec) -> BenchmarkSpec:
        """The benchmark spec with this regime's corruption profiles."""
        left = self.left if self.left is not None else spec.left_corruption
        right = self.right if self.right is not None else spec.right_corruption
        if self.scale_factor != 1.0:
            left = left.scaled(self.scale_factor)
            right = right.scaled(self.scale_factor)
        return dataclasses.replace(spec, left_corruption=left,
                                   right_corruption=right)


@dataclass(frozen=True)
class Scenario:
    """One point of the robustness matrix: oracle × corruption × pool skew."""

    name: str
    oracle: OracleModel = field(default_factory=OracleModel)
    corruption: CorruptionRegime = field(default_factory=CorruptionRegime)
    pool_skew: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("Scenario name must be non-empty")
        if (self.pool_skew is not None
                and self.pool_skew not in available_pool_transforms()):
            raise ConfigurationError(
                f"Unknown pool transform {self.pool_skew!r}; available: "
                f"{sorted(available_pool_transforms())}")

    def fingerprint(self) -> str:
        """Content hash of everything that changes a run's outcome.

        The human-facing ``description`` is excluded; every behavioural field
        is included *by construction* — the payload is derived from the
        dataclass fields (:func:`repro._fingerprints.fingerprint_fields`), so
        a field added to :class:`Scenario` is hashed without anyone
        remembering to list it, and editing a scenario definition invalidates
        its stored artifacts (the fingerprint feeds
        :meth:`repro.experiments.engine.RunSpec.fingerprint`).
        """
        fields = fingerprint_fields(Scenario, exclude=("description",))
        payload = fingerprint_payload(self, fields)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def dataset_fingerprint(self) -> str:
        """Hash of only the fields that shape the *dataset* (not the oracle).

        Scenarios differing solely in their oracle model share this value,
        so the engine's dataset cache builds each benchmark variant once per
        worker instead of once per scenario.  The empty string marks the
        untouched benchmark (shared with scenario-less callers).  The
        scenario name is included only when a pool skew is active, because
        the skew's random stream is derived from it.
        """
        if self.is_default:
            return ""
        # This payload is deliberately a *subset* of the fields (the oracle
        # must not invalidate the dataset cache), so it cannot be derived
        # from fingerprint_fields; full coverage is owned by fingerprint().
        payload = {  # repro: noqa[FP001] intentional field subset for dataset-cache sharing; fingerprint() above carries the structural coverage
            "corruption": dataclasses.asdict(self.corruption),
            "pool_skew": self.pool_skew,
            "skew_scope": self.name if self.pool_skew is not None else None,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def is_default(self) -> bool:
        """Whether this scenario leaves dataset generation untouched."""
        return (self.corruption.left is None and self.corruption.right is None
                and self.corruption.scale_factor == 1.0
                and self.pool_skew is None)

    def build_dataset(
        self,
        dataset_name: str,
        scale: ScaleProfile | str | None = None,
        random_state: int = 0,
    ) -> EMDataset:
        """Generate ``dataset_name`` under this scenario's corruption and skew.

        ``random_state`` is the benchmark seed (the engine passes the
        settings' ``base_random_seed``); the pool-skew stream is derived from
        it and the scenario name, so two scenarios sharing a transform still
        skew independently.
        """
        spec = self.corruption.apply_to(benchmark_spec(dataset_name))
        dataset = build_benchmark(spec, scale=scale, random_state=random_state)
        if self.pool_skew is not None:
            skew_rng = np.random.default_rng(
                _mixed_seed("pool-skew", self.name, dataset_name, random_state))
            dataset = apply_pool_transform(self.pool_skew, dataset, skew_rng)
        return dataset

    def build_oracle(self, dataset: EMDataset,
                     run_seed: int) -> LabelingOracle | None:
        """Instantiate this scenario's oracle for one run (``None`` = perfect).

        The oracle stream is derived from the run seed *and* the scenario
        name, mixed through crc32, so it never collides with the loop's own
        seed/selection streams (which consume ``default_rng(run_seed)``
        directly).
        """
        oracle_rng = np.random.default_rng(
            _mixed_seed("oracle", self.name, run_seed))
        return self.oracle.build(dataset, oracle_rng)

    def as_row(self) -> dict[str, object]:
        """Flat description for the CLI listing."""
        oracle = self.oracle.kind
        if self.oracle.noise_level > 0:
            oracle = f"{oracle}({self.oracle.noise_level:g})"
        return {
            "scenario": self.name,
            "oracle": oracle,
            "corruption": self.corruption.name,
            "pool_skew": self.pool_skew or "-",
            "description": self.description,
        }
