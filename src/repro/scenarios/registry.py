"""Declarative registry of built-in scenarios.

The built-ins cover the three axes independently (noise-only, corruption-only,
skew-only scenarios) so a robustness sweep can attribute an F1 drop to one
cause, plus one compound "worst-case" scenario.  User code can register
additional scenarios with :func:`register_scenario`; registration is
name-keyed and collision-checked, and must happen before specs referencing
the scenario are enumerated or resumed (the engine resolves scenarios by
name).
"""

from __future__ import annotations

from typing import Iterable

from repro._suggest import unknown_name_message
from repro.datasets.corruptions import CLEAN_SOURCE, DIRTY_SOURCE
from repro.exceptions import ConfigurationError
from repro.scenarios.base import CorruptionRegime, OracleModel, Scenario

#: Corruption regimes referenced by the built-in scenarios.
BENCHMARK_REGIME = CorruptionRegime()
CLEAN_REGIME = CorruptionRegime(name="clean", left=CLEAN_SOURCE,
                                right=CLEAN_SOURCE)
DIRTY_REGIME = CorruptionRegime(name="dirty", left=DIRTY_SOURCE,
                                right=DIRTY_SOURCE)
VERY_DIRTY_REGIME = CorruptionRegime(name="very-dirty", left=DIRTY_SOURCE,
                                     right=DIRTY_SOURCE, scale_factor=1.5)

_BUILTIN_SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="perfect",
        description="The paper's setting: perfect oracle, benchmark corruption"),
    Scenario(
        name="noisy-0.1",
        oracle=OracleModel(kind="noisy", flip_probability=0.1),
        description="Uniform 10% label noise"),
    Scenario(
        name="noisy-0.3",
        oracle=OracleModel(kind="noisy", flip_probability=0.3),
        description="Uniform 30% label noise"),
    Scenario(
        name="over-merging",
        oracle=OracleModel(kind="class-conditional",
                           false_positive_rate=0.25, false_negative_rate=0.02),
        description="Annotator merges look-alikes: 25% FP / 2% FN"),
    Scenario(
        name="under-merging",
        oracle=OracleModel(kind="class-conditional",
                           false_positive_rate=0.02, false_negative_rate=0.25),
        description="Annotator misses hard matches: 2% FP / 25% FN"),
    Scenario(
        name="abstaining",
        oracle=OracleModel(kind="abstaining", abstain_probability=0.2),
        description="Annotator declines 20% of the pairs"),
    Scenario(
        name="clean",
        corruption=CLEAN_REGIME,
        description="Both sources curated (clean corruption profile)"),
    Scenario(
        name="dirty",
        corruption=DIRTY_REGIME,
        description="Both sources crawled (dirty corruption profile)"),
    Scenario(
        name="very-dirty",
        corruption=VERY_DIRTY_REGIME,
        description="Dirty profile scaled 1.5x on both sources"),
    Scenario(
        name="skewed-cluster",
        pool_skew="skewed-cluster",
        description="Pool dominated by a minority of entity clusters"),
    Scenario(
        name="positive-starved",
        pool_skew="positive-starved",
        description="Pool keeps only a quarter of its matches"),
    Scenario(
        name="hostile",
        oracle=OracleModel(kind="noisy", flip_probability=0.1),
        corruption=VERY_DIRTY_REGIME,
        pool_skew="positive-starved",
        description="Compound worst case: noise + very dirty + starved pool"),
)

_SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (name-keyed).

    Re-registering a name raises unless ``replace`` is set — two different
    definitions behind one name would silently alias distinct runs.
    """
    existing = _SCENARIOS.get(scenario.name)
    if existing is not None and not replace:
        if existing == scenario:
            return existing
        raise ConfigurationError(
            f"Scenario {scenario.name!r} is already registered with a "
            "different definition; pass replace=True to overwrite")
    _SCENARIOS[scenario.name] = scenario
    return scenario


for _scenario in _BUILTIN_SCENARIOS:
    register_scenario(_scenario)


def available_scenarios() -> tuple[str, ...]:
    """Names of every registered scenario (built-ins first)."""
    return tuple(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    key = str(name).strip()
    try:
        return _SCENARIOS[key]
    except KeyError:
        raise ConfigurationError(
            unknown_name_message("scenario", name, _SCENARIOS)) from None


def resolve_scenarios(
    names: str | Scenario | Iterable[str | Scenario] | None,
) -> tuple[Scenario, ...]:
    """Normalize a scenario selection into Scenario objects.

    Accepts a single comma-separated string (the CLI form,
    ``"perfect,noisy-0.1"``), :class:`Scenario` objects (used as given), an
    iterable mixing both (names themselves possibly comma-separated), or
    ``None`` for every registered scenario.  Order is preserved and
    duplicates (by name) are dropped.
    """
    if names is None:
        return tuple(_SCENARIOS.values())
    if isinstance(names, (str, Scenario)):
        names = [names]
    flattened: list[Scenario] = []
    for entry in names:
        if isinstance(entry, Scenario):
            flattened.append(entry)
            continue
        flattened.extend(get_scenario(part.strip())
                         for part in str(entry).split(",") if part.strip())
    if not flattened:
        raise ConfigurationError("No scenario names given")
    unique = {scenario.name: scenario for scenario in flattened}
    return tuple(unique.values())
