"""SP — spawn-safety rules.

The parallel engine fans work out over ``ProcessPoolExecutor`` with a
``spawn``-compatible protocol: task callables must be top-level (picklable)
and per-worker state travels once through the pool *initializer*
(:func:`repro.experiments.engine._init_worker` is the pattern).  PR 3 learned
this the hard way — user-registered scenarios lived in a module-global
registry that spawn-started workers re-imported empty, so pool jobs failed on
registry lookups until the definitions were shipped through the initializer.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import LintContext, Rule, dotted_name, register_rule

#: Methods that ship a callable to another process.  ``map`` is only counted
#: when the receiver looks like a pool/executor — every sequence type has a
#: ``map``-shaped method somewhere.
_SUBMIT_ATTRS = frozenset({
    "submit", "map_indexed", "apply_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "map_async",
})

_POOLISH_RECEIVER = re.compile(r"pool|executor|exec", re.IGNORECASE)

#: Constructors whose ``initializer=``/callable keywords cross the process
#: boundary.
_POOL_CONSTRUCTORS = frozenset({
    "ProcessPoolExecutor", "Pool", "ParallelExecutor",
})

#: Function-name shapes sanctioned to mutate module globals: pool
#: initializers, which run once per worker before any task.
_INITIALIZER_NAME = re.compile(r"(^_?init)|(initializer$)")


def _receiver_text(node: ast.Attribute) -> str:
    return dotted_name(node) or ""


@register_rule
class UnpicklableTaskRule(Rule):
    code = "SP001"
    summary = ("lambdas, closures, and locally defined functions submitted "
               "to process pools cannot be pickled under spawn")
    history = ("the engine's executor protocol (PR 2/7): every pool task is "
               "a top-level callable; anything else dies at submit time on "
               "spawn platforms")

    def _flag_callable_arg(self, arg: ast.AST, ctx: LintContext,
                           where: str) -> None:
        if isinstance(arg, ast.Lambda):
            self.report(ctx, arg,
                        f"lambda passed to {where}: not picklable under a "
                        "spawn start method; use a top-level function")
        elif isinstance(arg, ast.Name) and ctx.is_locally_defined(arg.id):
            self.report(ctx, arg,
                        f"locally defined function {arg.id!r} passed to "
                        f"{where}: closures are not picklable under spawn; "
                        "move it to module level")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            is_submission = attr in _SUBMIT_ATTRS or (
                attr == "map"
                and _POOLISH_RECEIVER.search(_receiver_text(node.func.value)))
            if is_submission:
                where = f"{attr}()"
                for arg in node.args:
                    self._flag_callable_arg(arg, ctx, where)
                for keyword in node.keywords:
                    self._flag_callable_arg(keyword.value, ctx, where)
                return
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] in _POOL_CONSTRUCTORS:
            for keyword in node.keywords:
                if keyword.arg in ("initializer", "initargs"):
                    self._flag_callable_arg(keyword.value, ctx,
                                            f"{name}({keyword.arg}=...)")


@register_rule
class GlobalMutationRule(Rule):
    code = "SP002"
    summary = ("module-global mutation outside a pool initializer is "
               "invisible to spawn-started workers")
    history = ("PR 3: scenario registries mutated in the parent process "
               "were empty in spawn workers; definitions must travel "
               "through the pool initializer")

    def visit_Global(self, node: ast.Global, ctx: LintContext) -> None:
        names = ctx.function_name_stack()
        if not names:
            return  # module-level `global` is a no-op, not worker state
        if any(_INITIALIZER_NAME.search(name) for name in names):
            return
        self.report(ctx, node,
                    f"global {', '.join(node.names)} mutated in "
                    f"{names[-1]!r}: state set this way never reaches "
                    "spawn-started pool workers; ship it through a pool "
                    "initializer (see engine._init_worker)")
