"""Core of ``reprolint``: findings, the rule registry, and the AST walker.

Every rule is a small class registered under a stable code (``ND001`` …).
Rules are instantiated fresh per linted file and receive AST node events
through a single shared walk (:class:`LintWalker`): a rule declares interest
by defining ``visit_<NodeType>`` methods, exactly like :class:`ast.NodeVisitor`
but without each rule paying for its own traversal.  The walker maintains the
per-file context (:class:`LintContext`) rules need to scope their checks —
the enclosing function stack, a parent map, and the names of locally defined
(hence spawn-unsafe) functions per scope.

The registry doubles as the vocabulary for ``--select``/``--ignore`` and
``noqa`` directives; unknown codes are answered with the same did-you-mean
formatting every other registry of the package uses
(:func:`repro._suggest.unknown_name_message`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro._suggest import unknown_name_message
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a ``file:line:col`` location."""

    rule: str
    file: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}:{self.col}"

    def render(self) -> str:
        """Human-readable one-liner (the ``--format human`` output)."""
        return f"{self.location}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (the ``--format json`` output)."""
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(rule=str(payload["rule"]), file=str(payload["file"]),
                   line=int(payload["line"]), col=int(payload["col"]),
                   message=str(payload["message"]))


class Rule:
    """Base class of every lint rule.

    Class attributes document the rule for ``--list-rules`` and the README
    catalog: ``code`` is the stable selector, ``summary`` one line of what is
    flagged, and ``history`` names the real bug of this repository the rule
    encodes (the reason the rule exists).
    """

    code: str = ""
    summary: str = ""
    history: str = ""
    #: File names the rule never applies to (e.g. the module that *owns*
    #: global RNG state by design).
    exempt_files: tuple[str, ...] = ()

    def applies(self, ctx: "LintContext") -> bool:
        return ctx.path.name not in self.exempt_files

    def report(self, ctx: "LintContext", node: ast.AST, message: str) -> None:
        ctx.findings.append(Finding(
            rule=self.code, file=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message))

    def finish(self, ctx: "LintContext") -> None:
        """Hook called after the walk (for rules that accumulate state)."""


_REGISTRY: dict[str, type[Rule]] = {}

#: Codes of the meta-rules guarding the suppression mechanism itself; they
#: are not selectable lint rules but are valid vocabulary in reports.
META_RULES: dict[str, str] = {
    "RL000": "the file could not be parsed (syntax error)",
    "RL001": "a `# repro: noqa[...]` directive is missing its reason",
    "RL002": "a `# repro: noqa[...]` directive names an unknown rule",
    "RL003": "a `# repro: noqa[...]` directive suppresses nothing",
}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (codes must be unique)."""
    if not cls.code:
        raise ValueError(f"Rule {cls.__name__} has no code")
    if cls.code in _REGISTRY or cls.code in META_RULES:
        raise ValueError(f"Duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def available_rules() -> tuple[str, ...]:
    """Registered rule codes, sorted."""
    return tuple(sorted(_REGISTRY))


def rule_class(code: str) -> type[Rule]:
    """Look up one rule class, with did-you-mean on unknown codes."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigurationError(
            unknown_name_message("lint rule", code, _REGISTRY)) from None


def is_known_rule(code: str) -> bool:
    """Whether ``code`` names a registered rule or a meta-rule."""
    return code in _REGISTRY or code in META_RULES


def resolve_rules(select: Iterable[str] | None = None,
                  ignore: Iterable[str] | None = None) -> tuple[str, ...]:
    """The rule codes a run should apply, validating every name.

    ``select`` restricts the run to the named codes; ``ignore`` then removes
    codes.  Unknown codes raise :class:`ConfigurationError` with the
    registry's did-you-mean formatting rather than silently linting with a
    different rule set than the user asked for.
    """
    chosen = list(available_rules())
    if select is not None:
        selected = [rule_class(code).code for code in select]
        chosen = [code for code in chosen if code in set(selected)]
    if ignore is not None:
        ignored = {rule_class(code).code for code in ignore}
        chosen = [code for code in chosen if code not in ignored]
    return tuple(chosen)


@dataclass
class LintContext:
    """Per-file state shared by every rule during one walk."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    findings: list[Finding] = field(default_factory=list)
    #: Enclosing ``FunctionDef``/``AsyncFunctionDef`` nodes, outermost first.
    function_stack: list[ast.AST] = field(default_factory=list)
    #: Per function-scope: names bound by nested ``def`` statements (these
    #: are closures — not picklable under a ``spawn`` start method).
    local_def_stack: list[set[str]] = field(default_factory=list)
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent  # repro: noqa[ND002] in-process identity key over one walk, never persisted or ordered on

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The AST parent of ``node`` (``None`` for the module node)."""
        return self._parents.get(id(node))  # repro: noqa[ND002] same in-process identity key as the parent map above

    @property
    def current_function(self) -> ast.AST | None:
        """Innermost enclosing function definition, if any."""
        return self.function_stack[-1] if self.function_stack else None

    def function_name_stack(self) -> tuple[str, ...]:
        """Names of the enclosing functions, outermost first."""
        return tuple(fn.name for fn in self.function_stack)  # type: ignore[attr-defined]

    def is_locally_defined(self, name: str) -> bool:
        """Whether ``name`` is bound by a nested ``def`` in any open scope."""
        return any(name in names for names in self.local_def_stack)


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _nested_def_names(fn: ast.AST) -> set[str]:
    """Names of functions defined directly inside ``fn``'s body."""
    names: set[str] = set()
    for child in ast.walk(fn):
        if child is fn:
            continue
        if isinstance(child, _FUNCTION_NODES):
            names.add(child.name)
    return names


class LintWalker:
    """One traversal of a module's AST, dispatching events to every rule.

    Each rule gets the same document-order node stream an individual
    :class:`ast.NodeVisitor` would see, but the tree is walked once per file
    no matter how many rules run.  Function entry/exit updates the context's
    scope stacks before child nodes are visited, so ``visit_*`` handlers can
    trust ``ctx.current_function`` and ``ctx.is_locally_defined``.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)

    def walk(self, ctx: LintContext) -> list[Finding]:
        active = [rule for rule in self.rules if rule.applies(ctx)]
        if active:
            self._visit(ctx.tree, ctx, active)
            for rule in active:
                rule.finish(ctx)
        return ctx.findings

    def _visit(self, node: ast.AST, ctx: LintContext, rules: list[Rule]) -> None:
        is_function = isinstance(node, _FUNCTION_NODES)
        if is_function:
            ctx.function_stack.append(node)
            ctx.local_def_stack.append(_nested_def_names(node))
        handler_name = "visit_" + type(node).__name__
        for rule in rules:
            handler = getattr(rule, handler_name, None)
            if handler is not None:
                handler(node, ctx)
        for child in ast.iter_child_nodes(node):
            self._visit(child, ctx, rules)
        if is_function:
            ctx.function_stack.pop()
            ctx.local_def_stack.pop()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
