"""Committed baseline of grandfathered findings.

A baseline lets ``repro lint-code`` gate CI from day one: pre-existing
findings that are consciously accepted live in a reviewed, committed file,
and only *new* findings fail the build.  Entries are keyed by
``(file, rule, stripped source line)`` rather than line numbers, so
unrelated edits above a grandfathered site do not invalidate the baseline,
while any change to the flagged line itself does — exactly when a human
should re-look.

The repository's own baseline (``reprolint-baseline.json``) is empty: every
real finding of the initial sweep was either fixed or carries an inline
``# repro: noqa[RULE] reason`` justification.  Keep it that way; the
baseline mechanism exists for future sweeps that widen a rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding
from repro.exceptions import ConfigurationError

BASELINE_VERSION = 1

#: Default file name, resolved relative to the lint invocation's root.
DEFAULT_BASELINE_NAME = "reprolint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, content-addressed within its file."""

    file: str
    rule: str
    content: str  # the stripped source line the finding anchors to

    def to_dict(self) -> dict[str, str]:
        return {"file": self.file, "rule": self.rule, "content": self.content}


def entry_for(finding: Finding, source_lines: list[str]) -> BaselineEntry:
    """The baseline key of ``finding`` given its file's source lines."""
    index = finding.line - 1
    content = (source_lines[index].strip()
               if 0 <= index < len(source_lines) else "")
    return BaselineEntry(file=finding.file, rule=finding.rule,
                         content=content)


def read_baseline(path: Path) -> list[BaselineEntry]:
    """Load a baseline file, validating its version."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"Cannot read baseline {path}: {error}") from error
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"Baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}")
    return [BaselineEntry(file=str(entry["file"]), rule=str(entry["rule"]),
                          content=str(entry["content"]))
            for entry in payload.get("entries", ())]


def write_baseline(path: Path, entries: list[BaselineEntry]) -> None:
    """Write a baseline file (sorted, so the diff is reviewable)."""
    ordered = sorted(entries, key=lambda e: (e.file, e.rule, e.content))
    payload = {"version": BASELINE_VERSION,
               "entries": [entry.to_dict() for entry in ordered]}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                    encoding="utf-8")


def split_by_baseline(
    findings: list[Finding],
    entries: list[BaselineEntry],
    sources: dict[str, list[str]],
) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
    """Partition ``findings`` against the baseline.

    Returns ``(new, grandfathered, stale_entries)``.  Each baseline entry
    absorbs at most one finding (a second identical violation on another
    line is a new finding); entries matching nothing are reported as stale
    so the baseline shrinks as code gets fixed.
    """
    remaining: dict[BaselineEntry, int] = {}
    for entry in entries:
        remaining[entry] = remaining.get(entry, 0) + 1
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = entry_for(finding, sources.get(finding.file, []))
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [entry for entry, count in remaining.items()
             for _ in range(count)]
    return new, grandfathered, stale
