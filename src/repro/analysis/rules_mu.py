"""MU — mutation-hazard rules.

The engine-level caches (feature matrices, signature caches) hand one array
to many runs; the PR 4/5 design marks them ``writeable=False`` so an
accidental in-place write fails instead of silently corrupting every later
run that shares the matrix.  These rules catch the two ways that protection
gets defeated: re-enabling writes on a cached array, and the classic
mutable-default-argument aliasing that turns one call's scratch state into
every call's shared state.
"""

from __future__ import annotations

import ast

from repro.analysis.core import LintContext, Rule, register_rule

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})

#: Functions returning arrays that callers must treat as read-only (the
#: engine marks them ``writeable=False``; writing requires a copy).
READONLY_PRODUCERS = frozenset({
    "get_feature_matrix",
})

#: ndarray methods that mutate in place.
_INPLACE_METHODS = frozenset({
    "sort", "fill", "resize", "put", "partition", "itemset", "setfield",
})


@register_rule
class MutableDefaultRule(Rule):
    code = "MU001"
    summary = ("mutable default arguments alias one object across every "
               "call")
    history = ("classic shared-state hazard: a []/{} default turns per-call "
               "scratch state into cross-run shared state, the exact "
               "corruption the read-only caches exist to prevent")

    def _check_defaults(self, node: ast.AST, ctx: LintContext) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                self.report(ctx, default,
                            "mutable default argument: one object is shared "
                            "by every call; default to None and build "
                            "inside the function")
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in _MUTABLE_CONSTRUCTORS):
                self.report(ctx, default,
                            f"mutable default argument "
                            f"({default.func.id}()): one object is shared "
                            "by every call; default to None and build "
                            "inside the function")

    visit_FunctionDef = _check_defaults
    visit_AsyncFunctionDef = _check_defaults
    visit_Lambda = _check_defaults


@register_rule
class ReadOnlyWriteRule(Rule):
    code = "MU002"
    summary = ("in-place writes to arrays the caches hand out read-only "
               "corrupt every later run sharing the array")
    history = ("PR 4/5: the engine's feature-matrix cache shares one array "
               "across a whole grid; it is writeable=False by design and "
               "must stay that way")

    def __init__(self) -> None:
        #: Per enclosing-function id: names assigned from read-only
        #: producers in that function.
        self._readonly_names: dict[int, set[str]] = {}

    def _scope_names(self, ctx: LintContext) -> set[str]:
        fn = ctx.current_function
        return self._readonly_names.setdefault(id(fn), set())  # repro: noqa[ND002] per-file identity key for AST scope nodes, discarded after the walk

    def visit_Assign(self, node: ast.Assign, ctx: LintContext) -> None:
        if (isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in READONLY_PRODUCERS):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scope_names(ctx).add(target.id)
            return
        # Writing through a subscript of a tracked name is an in-place write.
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self._scope_names(ctx)):
                self.report(ctx, target,
                            f"subscript write to {target.value.id!r}, which "
                            "came from a read-only cache; copy before "
                            "mutating")

    def visit_AugAssign(self, node: ast.AugAssign, ctx: LintContext) -> None:
        target = node.target
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Subscript) and isinstance(target.value,
                                                              ast.Name):
            name = target.value.id
        if name is not None and name in self._scope_names(ctx):
            self.report(ctx, node,
                        f"in-place operator on {name!r}, which came from a "
                        "read-only cache; copy before mutating")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        receiver = node.func.value
        # .setflags(write=True) defeats the cache's protection wholesale,
        # no matter where the array came from.
        if node.func.attr == "setflags":
            for keyword in node.keywords:
                if (keyword.arg == "write"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value):
                    self.report(ctx, node,
                                "setflags(write=True) re-enables writes on "
                                "an array; cached arrays are read-only by "
                                "design — copy instead")
            return
        if (isinstance(receiver, ast.Name)
                and receiver.id in self._scope_names(ctx)
                and node.func.attr in _INPLACE_METHODS):
            self.report(ctx, node,
                        f".{node.func.attr}() mutates {receiver.id!r} in "
                        "place, but it came from a read-only cache; copy "
                        "before mutating")
