"""FP — fingerprint-hygiene rules.

Content fingerprints key the resumable artifact store and the manifest
lockfiles, so the *coverage* of a fingerprint is a correctness property: a
config field that exists but is not hashed means two genuinely different runs
collide on one artifact.  PR 6 and PR 7 both hit this class — a new config
field silently absent from a hand-maintained payload — which is why payloads
must be derived from :func:`repro._fingerprints.fingerprint_fields` instead
of enumerated by hand, and why hashed serialization must be canonical
(``repr(float)`` and unsorted JSON are both representation-dependent).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import LintContext, Rule, dotted_name, register_rule
from repro.analysis.rules_nd import calls_hash_function

_FINGERPRINT_FUNCTION = re.compile(r"fingerprint")

#: Minimum hand-enumerated attribute reads of one object before a payload
#: dict counts as field enumeration (below this, it is plausibly a derived
#: payload rather than a field list).
_MIN_ENUMERATED_FIELDS = 3


def _function_calls_name(fn: ast.AST, name: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            called = dotted_name(node.func)
            if called is not None and called.split(".")[-1] == name:
                return True
    return False


@register_rule
class FingerprintFieldsRule(Rule):
    code = "FP001"
    summary = ("fingerprint payloads enumerated field-by-field drift when a "
               "config dataclass gains a field")
    history = ("PR 6/7: new config fields were not folded into "
               "config/settings fingerprints, so distinct runs collided in "
               "the store; derive payloads via fingerprint_fields()")

    def visit_Dict(self, node: ast.Dict, ctx: LintContext) -> None:
        names = ctx.function_name_stack()
        if not any(_FINGERPRINT_FUNCTION.search(name) for name in names):
            return
        fn = ctx.current_function
        if fn is None or _function_calls_name(fn, "fingerprint_fields"):
            return
        keys = [key for key in node.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)]
        if len(keys) < _MIN_ENUMERATED_FIELDS:
            return
        # Count attribute reads per base name across the dict values; three
        # or more reads of one object is a hand-maintained field list.
        bases: dict[str, int] = {}
        for value in node.values:
            seen: set[str] = set()
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute) and isinstance(sub.value,
                                                                 ast.Name):
                    seen.add(sub.value.id)
            for base in seen:
                bases[base] = bases.get(base, 0) + 1
        if bases and max(bases.values()) >= _MIN_ENUMERATED_FIELDS:
            base = max(bases, key=lambda name: bases[name])
            self.report(ctx, node,
                        f"fingerprint payload enumerates {base!r} fields by "
                        "hand; new fields will silently not be hashed — "
                        "derive the field list with "
                        "repro._fingerprints.fingerprint_fields() so "
                        "coverage is structural")


@register_rule
class NonCanonicalHashRule(Rule):
    code = "FP002"
    summary = ("repr()/!r and unsorted json.dumps in hashed payloads tie "
               "fingerprints to value representation instead of value "
               "content")
    history = ("float repr drift: repr(0.1 + 0.2) depends on arithmetic "
               "history; hashed payloads must go through canonical JSON "
               "(sort_keys=True) of the raw values")

    def _in_hash_scope(self, ctx: LintContext) -> bool:
        fn = ctx.current_function
        if fn is None:
            return False
        if any(_FINGERPRINT_FUNCTION.search(name)
               for name in ctx.function_name_stack()):
            return True
        return calls_hash_function(fn)

    @staticmethod
    def _inside_raise(node: ast.AST, ctx: LintContext) -> bool:
        """Whether ``node`` feeds a ``raise`` — error text, not hashed data."""
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, ast.Raise):
                return True
            current = ctx.parent(current)
        return False

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not self._in_hash_scope(ctx) or self._inside_raise(node, ctx):
            return
        if isinstance(node.func, ast.Name) and node.func.id == "repr":
            self.report(ctx, node,
                        "repr() in a hashed payload: representation is not "
                        "content (float repr depends on arithmetic "
                        "history); serialize canonically instead")
            return
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "dumps":
            sort_keys = next((kw for kw in node.keywords
                              if kw.arg == "sort_keys"), None)
            if (sort_keys is None
                    or not (isinstance(sort_keys.value, ast.Constant)
                            and sort_keys.value.value is True)):
                self.report(ctx, node,
                            "json.dumps without sort_keys=True in a hashed "
                            "payload: dict order leaks into the hash")

    def visit_FormattedValue(self, node: ast.FormattedValue,
                             ctx: LintContext) -> None:
        if (node.conversion == ord("r") and self._in_hash_scope(ctx)
                and not self._inside_raise(node, ctx)):
            self.report(ctx, node,
                        "!r conversion in a hashed payload: repr is "
                        "representation, not content; serialize "
                        "canonically instead")
