"""Runtime determinism sanitizer — the dynamic half of ``reprolint``.

The static rules catch what is visible in the AST; this module catches what
is not.  :func:`determinism_guard` seeds *and freezes* the global RNGs for
the duration of a block: any code path that consumes ``random`` or the
legacy ``np.random`` global state — precisely the ND003 bug class, but
reached through a dependency the linter cannot see — moves the frozen state
and fails the guard loudly.  The guard also carries the read-only assertion
for cached arrays (the MU002 class at runtime) and the order helpers the
hypothesis property suites use to prove outputs are independent of
abstention/query order and of dict insertion order.

Opt-in surfaces:

* tests — the property suites wrap their subjects in ``determinism_guard``;
* the engine — ``REPRO_SANITIZE=1`` makes
  :func:`repro.experiments.engine.execute_spec` run every job under a guard
  and assert the shared feature matrix stayed ``writeable=False``.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence, TypeVar

import numpy as np

_T = TypeVar("_T")

#: Environment switch for the engine-level guard.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"

#: Seed the guard pins the global RNGs to.  The value is arbitrary; what
#: matters is that the post-seed state is *known*, so drift is detectable.
GUARD_SEED = 20230


class DeterminismViolation(AssertionError):
    """A guarded block consumed global RNG state or mutated a shared array."""


def sanitizer_enabled() -> bool:
    """Whether the engine should guard every executed run."""
    return os.environ.get(SANITIZE_ENV_VAR, "").lower() in ("1", "true", "on")


def _numpy_state_equal(state_a: tuple, state_b: tuple) -> bool:
    if len(state_a) != len(state_b):
        return False
    return all(np.array_equal(part_a, part_b)
               for part_a, part_b in zip(state_a, state_b))


class DeterminismGuard:
    """Handle yielded by :func:`determinism_guard`; holds the frozen states."""

    def __init__(self, py_state: tuple, np_state: tuple) -> None:
        self._py_state = py_state
        self._np_state = np_state

    def check(self, label: str = "guarded block") -> None:
        """Fail loudly if any global RNG moved since the guard froze it."""
        if random.getstate() != self._py_state:
            raise DeterminismViolation(
                f"{label} consumed the stdlib global RNG (random.*); every "
                "random stream must flow through repro._rng seeded "
                "Generators")
        if not _numpy_state_equal(np.random.get_state(), self._np_state):
            raise DeterminismViolation(
                f"{label} consumed numpy's legacy global RNG (np.random.*); "
                "every random stream must flow through repro._rng seeded "
                "Generators")

    @staticmethod
    def assert_read_only(array: np.ndarray, name: str = "array") -> None:
        """Fail loudly if a cache-owned array became writeable."""
        if array.flags.writeable:
            raise DeterminismViolation(
                f"{name} is writeable: cached arrays are shared across runs "
                "and must stay writeable=False (copy before mutating)")


@contextmanager
def determinism_guard(label: str = "guarded block",
                      seed: int = GUARD_SEED) -> Iterator[DeterminismGuard]:
    """Seed-and-freeze the global RNGs around a block; fail on any drift.

    On entry the previous global states are snapshotted and both RNGs are
    seeded to a known state; on a clean exit the guard verifies the states
    never moved (a moved state means some code path consumed global
    randomness — nondeterministic under concurrency and invisible to the
    spawn-seeded streams), then restores the snapshots so the guard itself
    is side-effect free.
    """
    py_previous = random.getstate()
    np_previous = np.random.get_state()
    # The sanitizer owns the global state on purpose: pinning it to a known
    # value is what makes later drift detectable.
    random.seed(seed)  # repro: noqa[ND003] the guard pins global state by design
    np.random.seed(seed)  # repro: noqa[ND003] the guard pins global state by design
    guard = DeterminismGuard(random.getstate(), np.random.get_state())
    try:
        yield guard
        guard.check(label)
    finally:
        random.setstate(py_previous)  # repro: noqa[ND003] restoring the pre-guard snapshot
        np.random.set_state(np_previous)  # repro: noqa[ND003] restoring the pre-guard snapshot


def permuted(items: Sequence[_T], seed: int = 0) -> list[_T]:
    """A deterministic reordering of ``items`` (order-dependence probes).

    Property tests run a subject over ``items`` and ``permuted(items)`` and
    assert the per-item outputs agree — the runtime analogue of the ND005
    rule for orderings the AST cannot see (query order, abstention order).
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(items))
    return [items[index] for index in order]


def shuffled_dict(mapping: Mapping[str, Any], seed: int = 0) -> dict[str, Any]:
    """``mapping`` rebuilt with deterministically reordered insertion order.

    Probes dict-order dependence: code whose output changes between a
    mapping and its ``shuffled_dict`` sibling depends on insertion order —
    deterministic per run but brittle under refactors, exactly the bug class
    the sorted-output convention exists to prevent.
    """
    keys = permuted(list(mapping), seed=seed)
    return {key: mapping[key] for key in keys}
