"""``reprolint``: static determinism/spawn-safety analysis + runtime sanitizer.

The static half (:mod:`~repro.analysis.runner`) is an AST-based lint engine
whose rules encode the determinism bugs this repository has actually had to
find by hand — builtin ``hash()`` in MinHash (PR 1), spawn-unsafe registries
(PR 3), fingerprint drift on new config fields (PR 6/7).  The dynamic half
(:mod:`~repro.analysis.sanitizer`) guards running code against the same bug
classes: frozen global RNG state, read-only cache arrays, order-independence
probes.

Entry points: ``repro lint-code`` on the command line, :func:`lint_paths` /
:func:`lint_source` programmatically, :func:`determinism_guard` at runtime.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    read_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    available_rules,
    resolve_rules,
    rule_class,
)
from repro.analysis.runner import (
    LintReport,
    lint_paths,
    lint_source,
    rule_catalog,
)
from repro.analysis.sanitizer import (
    DeterminismViolation,
    determinism_guard,
    permuted,
    sanitizer_enabled,
    shuffled_dict,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DeterminismViolation",
    "Finding",
    "LintReport",
    "available_rules",
    "determinism_guard",
    "lint_paths",
    "lint_source",
    "permuted",
    "read_baseline",
    "resolve_rules",
    "rule_catalog",
    "rule_class",
    "sanitizer_enabled",
    "shuffled_dict",
    "write_baseline",
]
