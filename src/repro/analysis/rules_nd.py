"""ND — nondeterminism rules.

Every rule in this family encodes a determinism bug this repository actually
shipped and later had to find by hand; the rule exists so the *class* of bug
is caught at lint time instead:

* PR 1 found MinHash signatures keyed by the builtin ``hash()``, whose
  ``PYTHONHASHSEED`` salt made LSH candidate sets differ between interpreter
  runs → :class:`BuiltinHashRule` / :class:`BuiltinIdRule`.
* The seeding policy (everything flows through :mod:`repro._rng`) exists
  because global-RNG consumers are invisible to the spawn-seeded streams →
  :class:`GlobalRngRule`.
* Content fingerprints key the artifact store; a wall-clock read inside a
  fingerprint/artifact path would make every resume a re-execution →
  :class:`WallClockRule`.
* Set iteration order depends on the per-process string-hash salt, so a set
  iterated into an ordered output is a cross-run nondeterminism →
  :class:`UnorderedIterationRule`.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import LintContext, Rule, dotted_name, register_rule

#: Consuming/seeding functions of the stdlib ``random`` module's global
#: instance.  ``random.Random(seed)`` (an owned instance) is fine.
_STDLIB_RANDOM_CALLS = frozenset({
    "random", "randrange", "randint", "uniform", "shuffle", "sample",
    "choice", "choices", "seed", "setstate", "getrandbits", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "vonmisesvariate",
    "gammavariate", "triangular", "betavariate", "paretovariate",
    "weibullvariate", "binomialvariate",
})

#: ``numpy.random`` attributes that construct *owned* generators — the
#: sanctioned spellings.  Everything else on ``np.random`` is legacy
#: global-state API.
_NUMPY_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    # Reading the global state is harmless (the runtime sanitizer does it to
    # *detect* drift); mutating it is not.
    "get_state",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today", "datetime.date.today",
})

#: Function names marking fingerprint/artifact construction paths.
_FINGERPRINT_FUNCTION = re.compile(r"fingerprint|artifact|payload|lockfile|_key")

#: Modules that *are* fingerprint/artifact paths end to end.
_FINGERPRINT_MODULES = ("experiments/store.py", "experiments/engine.py",
                        "manifests/lockfile.py")

_HASH_FEEDING_CALLS = re.compile(
    r"^(hashlib\.|zlib\.(crc32|adler32)$|sha\d+$|md5$|blake2)")


def calls_hash_function(fn: ast.AST) -> bool:
    """Whether ``fn``'s body calls a content-hashing primitive."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and _HASH_FEEDING_CALLS.search(name):
                return True
    return False


@register_rule
class BuiltinHashRule(Rule):
    code = "ND001"
    summary = ("builtin hash() is salted per process (PYTHONHASHSEED); its "
               "values must never feed persisted or ordered data")
    history = ("PR 1: MinHash signatures built on hash() made LSH candidate "
               "sets differ between interpreter runs")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self.report(ctx, node,
                        "builtin hash() is per-process salted; use a stable "
                        "hash (zlib.crc32, hashlib) for anything persisted "
                        "or ordered")


@register_rule
class BuiltinIdRule(Rule):
    code = "ND002"
    summary = ("builtin id() values are memory addresses; they change every "
               "run and must not reach persisted or ordered data")
    history = ("same class as the PR 1 hash() bug: address-derived values "
               "silently vary across processes")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "id":
            self.report(ctx, node,
                        "builtin id() is an address: stable only within one "
                        "process and one object lifetime; do not let it "
                        "reach persisted or ordered data")


@register_rule
class GlobalRngRule(Rule):
    code = "ND003"
    summary = ("global random-state calls (random.*, legacy np.random.*) "
               "bypass the seeded-Generator policy of repro._rng")
    history = ("the whole seeding policy: scenario/oracle streams are "
               "spawn_rng-derived; a global-RNG consumer is invisible to "
               "them and breaks serial≡parallel")
    exempt_files = ("_rng.py",)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _STDLIB_RANDOM_CALLS):
            self.report(ctx, node,
                        f"{name}() consumes the stdlib global RNG; take an "
                        "explicit seed/Generator through "
                        "repro._rng.ensure_rng instead")
            return
        if (len(parts) == 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in _NUMPY_RANDOM_ALLOWED):
            self.report(ctx, node,
                        f"{name}() uses numpy's legacy global RNG; use "
                        "np.random.default_rng / repro._rng.ensure_rng")


@register_rule
class WallClockRule(Rule):
    code = "ND004"
    summary = ("wall-clock reads (time.time, datetime.now, …) inside "
               "fingerprint/artifact paths make content hashes drift")
    history = ("fingerprints key the resumable artifact store; a timestamp "
               "in a hashed payload would re-execute every resumed run "
               "(the PR 6/7 drift class, time-flavoured)")

    def _in_fingerprint_scope(self, ctx: LintContext) -> bool:
        if any(_FINGERPRINT_FUNCTION.search(name)
               for name in ctx.function_name_stack()):
            return True
        if any(ctx.display_path.endswith(module)
               for module in _FINGERPRINT_MODULES):
            return True
        fn = ctx.current_function
        return fn is not None and calls_hash_function(fn)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS and self._in_fingerprint_scope(ctx):
            self.report(ctx, node,
                        f"{name}() reads the wall clock inside a "
                        "fingerprint/artifact path; content hashes must "
                        "depend only on content (time.perf_counter is fine "
                        "for durations outside hashed payloads)")


#: Builtins whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "set", "frozenset", "len",
})

#: Set methods returning sets (receiver must itself be a set expression for
#: the chain to be recognized — static analysis cannot type arbitrary names).
_SET_RETURNING_METHODS = frozenset({
    "difference", "union", "intersection", "symmetric_difference",
})


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` syntactically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set",
                                                                "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_RETURNING_METHODS
                and _is_set_expr(node.func.value)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


_SET_FIX_HINT = ("iterate sorted(...) or dict.fromkeys(...) (deterministic "
                 "first-occurrence order) instead")


@register_rule
class UnorderedIterationRule(Rule):
    code = "ND005"
    summary = ("iterating a set into an ordered output depends on the "
               "per-process string-hash salt")
    history = ("sibling of the PR 1 hash() bug: set order is salted too, so "
               "any ordered consumption varies across interpreter runs")

    def _consumed_unordered(self, node: ast.AST, ctx: LintContext) -> bool:
        """Whether ``node`` (a generator/comp) escapes into ordered output."""
        parent = ctx.parent(node)
        if (isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_INSENSITIVE_CONSUMERS):
            return False
        return True

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        if _is_set_expr(node.iter):
            self.report(ctx, node.iter,
                        "for-loop over a set: iteration order is salted "
                        f"per process; {_SET_FIX_HINT}")

    def visit_ListComp(self, node: ast.ListComp, ctx: LintContext) -> None:
        self._check_comprehension(node, ctx, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp, ctx: LintContext) -> None:
        self._check_comprehension(node, ctx, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp,
                           ctx: LintContext) -> None:
        if self._consumed_unordered(node, ctx):
            self._check_comprehension(node, ctx, "generator expression")

    def _check_comprehension(self, node: ast.AST, ctx: LintContext,
                             what: str) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(generator.iter):
                self.report(ctx, generator.iter,
                            f"{what} over a set produces salted ordering; "
                            f"{_SET_FIX_HINT}")

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            return
        if isinstance(node.func, ast.Name):
            if node.func.id not in ("list", "tuple", "enumerate"):
                return
            label = f"{node.func.id}()"
        else:
            if node.func.attr != "join":
                return
            label = "str.join()"
        for arg in node.args:
            if _is_set_expr(arg):
                self.report(ctx, arg,
                            f"{label} materializes a set in salted order; "
                            f"{_SET_FIX_HINT}")
