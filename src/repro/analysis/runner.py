"""The ``reprolint`` entry points: file discovery, linting, and rendering.

``lint_paths`` is what the CLI and the test suite call: it walks the given
files/directories, runs every selected rule through one AST pass per file,
applies ``noqa`` suppressions and the committed baseline, and returns a
:class:`LintReport` that renders as human text or as the versioned JSON
document CI uploads as an artifact.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

# The rule modules register themselves on import; importing them here makes
# "import repro.analysis.runner" sufficient to get the full registry.
import repro.analysis.rules_fp  # noqa: F401  (registration side effect)
import repro.analysis.rules_mu  # noqa: F401
import repro.analysis.rules_nd  # noqa: F401
import repro.analysis.rules_sp  # noqa: F401
from repro.analysis.baseline import (
    BaselineEntry,
    entry_for,
    read_baseline,
    split_by_baseline,
)
from repro.analysis.core import (
    Finding,
    LintContext,
    LintWalker,
    available_rules,
    resolve_rules,
    rule_class,
)
from repro.analysis.noqa import apply_suppressions, parse_suppressions

#: Format version of the ``--format json`` document.
JSON_FORMAT_VERSION = 1


@dataclass
class LintReport:
    """Everything one lint run produced, ready to render or gate on."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    rules: tuple[str, ...] = ()
    #: Source lines per display path (baseline writing needs them).
    sources: dict[str, list[str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the run should gate green (no non-baselined findings)."""
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        """The ``--format json`` document (schema-stable, CI-parseable)."""
        return {
            "version": JSON_FORMAT_VERSION,
            "tool": "reprolint",
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [finding.to_dict() for finding in self.suppressed],
            "grandfathered": [finding.to_dict()
                              for finding in self.grandfathered],
            "stale_baseline": [entry.to_dict()
                               for entry in self.stale_baseline],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        for entry in self.stale_baseline:
            lines.append(f"{entry.file}: stale baseline entry "
                         f"[{entry.rule}] {entry.content!r} — the finding "
                         "is gone; remove it from the baseline")
        summary = (f"{len(self.findings)} finding(s), "
                   f"{len(self.suppressed)} suppressed, "
                   f"{len(self.grandfathered)} baselined, "
                   f"{self.files_checked} file(s) checked")
        lines.append(summary)
        return "\n".join(lines)

    def baseline_entries(self) -> list[BaselineEntry]:
        """Baseline entries covering every current non-suppressed finding."""
        return [entry_for(finding, self.sources.get(finding.file, []))
                for finding in self.findings + self.grandfathered]


def iter_python_files(paths: Sequence[str | Path],
                      root: Path | None = None) -> Iterator[Path]:
    """Yield the ``.py`` files under ``paths``, sorted for determinism."""
    root = root or Path.cwd()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(source: str, display_path: str,
                rules: Iterable[str] | None = None,
                check_unused_noqa: bool | None = None,
                ) -> tuple[list[Finding], list[Finding]]:
    """Lint one in-memory module; returns ``(kept, suppressed)`` findings.

    The workhorse behind :func:`lint_paths` and the per-rule fixture tests.
    Syntax errors are reported as a finding rather than raised — a lint gate
    must point at the broken file, not crash on it.
    """
    codes = resolve_rules(rules) if rules is not None else available_rules()
    if check_unused_noqa is None:
        check_unused_noqa = set(codes) == set(available_rules())
    try:
        tree = ast.parse(source, filename=display_path)
    except SyntaxError as error:
        return [Finding(rule="RL000", file=display_path,
                        line=error.lineno or 1, col=(error.offset or 1) - 1,
                        message=f"syntax error: {error.msg}")], []
    ctx = LintContext(path=Path(display_path), display_path=display_path,
                      source=source, tree=tree)
    walker = LintWalker([rule_class(code)() for code in codes])
    raw_findings = walker.walk(ctx)
    suppressions, directive_findings = parse_suppressions(source, display_path)
    kept, suppressed, unused = apply_suppressions(
        raw_findings, suppressions, check_unused=check_unused_noqa)
    kept.extend(directive_findings)
    kept.extend(unused)
    kept.sort(key=lambda f: (f.line, f.col, f.rule))
    return kept, suppressed


def lint_paths(paths: Sequence[str | Path],
               root: Path | None = None,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None,
               baseline_path: Path | None = None) -> LintReport:
    """Lint every Python file under ``paths`` against the selected rules."""
    root = root or Path.cwd()
    codes = resolve_rules(select, ignore)
    check_unused = set(codes) == set(available_rules())
    report = LintReport(rules=codes)
    all_kept: list[Finding] = []
    for path in iter_python_files(paths, root=root):
        display = _display_path(path, root)
        source = path.read_text(encoding="utf-8")
        report.sources[display] = source.splitlines()
        kept, suppressed = lint_source(source, display, rules=codes,
                                       check_unused_noqa=check_unused)
        all_kept.extend(kept)
        report.suppressed.extend(suppressed)
        report.files_checked += 1
    if baseline_path is not None and baseline_path.exists():
        entries = read_baseline(baseline_path)
        new, grandfathered, stale = split_by_baseline(
            all_kept, entries, report.sources)
        report.findings = new
        report.grandfathered = grandfathered
        report.stale_baseline = stale
    else:
        report.findings = all_kept
    return report


def rule_catalog() -> list[dict[str, str]]:
    """The rule table for ``--list-rules`` and the README."""
    rows = []
    for code in available_rules():
        cls = rule_class(code)
        rows.append({"rule": code, "summary": cls.summary,
                     "history": cls.history})
    return rows
