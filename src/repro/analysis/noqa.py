"""``# repro: noqa[RULE] reason`` suppression directives.

A suppression is a *justified* exception, so the reason is mandatory — a bare
``noqa`` is itself a finding (``RL001``), as is a directive naming a rule
that does not exist (``RL002``, with the registry's did-you-mean hint) or a
directive that suppresses nothing (``RL003``, only checked when the full rule
set runs — a narrowed ``--select`` would make every other suppression look
unused).

The syntax is deliberately namespaced (``repro:``) so generic tool noqa
comments never collide with it, and per-line: a directive suppresses exactly
the named rules' findings on its own line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro._suggest import unknown_name_message
from repro.analysis.core import Finding, available_rules, is_known_rule

_DIRECTIVE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$")


def _iter_comments(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` of every real comment token of ``source``.

    Tokenizing (rather than regexing raw lines) is what keeps directive-shaped
    text inside docstrings and string literals from parsing as directives —
    this module's own docstring would otherwise lint itself.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported as RL000 by the runner before
        # suppression parsing matters; partial comment lists are fine.
        pass
    return comments


@dataclass
class Suppression:
    """One parsed directive: the rules it silences on ``line``, and why."""

    file: str
    line: int
    col: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


def parse_suppressions(source: str,
                       display_path: str) -> tuple[list[Suppression],
                                                   list[Finding]]:
    """Extract every directive of ``source`` plus the directive-level findings.

    Malformed directives (no reason, unknown rule) produce meta-findings
    immediately; well-formed ones come back for the runner to apply.  A
    directive with problems still suppresses the rules it names correctly —
    failing the named rule *and* the directive would double-report one site.
    """
    suppressions: list[Suppression] = []
    findings: list[Finding] = []
    for line_number, comment_col, text in _iter_comments(source):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        col = comment_col + match.start()
        rules = tuple(code.strip() for code in match.group("rules").split(",")
                      if code.strip())
        reason = match.group("reason").strip()
        if not rules:
            findings.append(Finding(
                rule="RL002", file=display_path, line=line_number, col=col,
                message="noqa directive names no rule; write "
                        "`# repro: noqa[RULE] reason`"))
            continue
        known: list[str] = []
        for code in rules:
            if is_known_rule(code):
                known.append(code)
            else:
                findings.append(Finding(
                    rule="RL002", file=display_path, line=line_number,
                    col=col,
                    message=unknown_name_message("lint rule", code,
                                                 available_rules())))
        if not reason:
            findings.append(Finding(
                rule="RL001", file=display_path, line=line_number, col=col,
                message="noqa directive has no reason; a suppression is a "
                        "justified exception — say why"))
        suppressions.append(Suppression(
            file=display_path, line=line_number, col=col,
            rules=tuple(known), reason=reason))
    return suppressions, findings


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    check_unused: bool,
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Split ``findings`` into kept and suppressed; add unused-noqa findings.

    Returns ``(kept, suppressed, meta)``.  ``check_unused`` is only true when
    the full rule set ran (see module docstring).
    """
    by_line: dict[tuple[str, int], list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault((suppression.file, suppression.line),
                           []).append(suppression)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        candidates = by_line.get((finding.file, finding.line), ())
        matched = next((s for s in candidates if finding.rule in s.rules),
                       None)
        if matched is not None:
            matched.used = True
            suppressed.append(finding)
        else:
            kept.append(finding)
    meta: list[Finding] = []
    if check_unused:
        for suppression in suppressions:
            if not suppression.used and suppression.rules:
                meta.append(Finding(
                    rule="RL003", file=suppression.file,
                    line=suppression.line, col=suppression.col,
                    message=f"noqa[{','.join(suppression.rules)}] "
                            "suppresses nothing on this line; remove the "
                            "stale directive"))
    return kept, suppressed, meta
