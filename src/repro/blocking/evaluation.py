"""Blocking quality metrics: pair completeness and reduction ratio."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.data.pair import MATCH, PairSet
from repro.data.record import Table


@dataclass(frozen=True)
class BlockingReport:
    """Quality report of one blocking run.

    Attributes
    ----------
    num_candidates:
        Number of candidate pairs produced by the blocker.
    num_true_matches:
        Number of gold match pairs in the dataset.
    num_recalled_matches:
        Gold matches that survived blocking.
    pair_completeness:
        Recall of the blocker (``recalled / true``); the paper's candidate
        sets are assumed to have completeness close to 1.
    reduction_ratio:
        ``1 - candidates / (|left| * |right|)``; how much of the quadratic
        comparison space the blocker prunes.
    """

    num_candidates: int
    num_true_matches: int
    num_recalled_matches: int
    pair_completeness: float
    reduction_ratio: float


def evaluate_blocking(
    candidates: set[tuple[str, str]],
    gold_pairs: PairSet,
    left: Table,
    right: Table,
) -> BlockingReport:
    """Score ``candidates`` against the gold labels in ``gold_pairs``."""
    true_matches = {pair.key for pair in gold_pairs if pair.label == MATCH}
    recalled = true_matches & candidates
    total_space = max(len(left) * len(right), 1)
    pair_completeness = (len(recalled) / len(true_matches)) if true_matches else 1.0
    reduction_ratio = 1.0 - len(candidates) / total_space
    return BlockingReport(
        num_candidates=len(candidates),
        num_true_matches=len(true_matches),
        num_recalled_matches=len(recalled),
        pair_completeness=pair_completeness,
        reduction_ratio=reduction_ratio,
    )


def evaluate_blocking_stream(
    chunks: Iterable[Iterable[tuple[str, str]]],
    gold_pairs: PairSet,
    left: Table,
    right: Table,
) -> BlockingReport:
    """Score a :meth:`~repro.blocking.base.Blocker.block_iter` stream.

    Produces the same :class:`BlockingReport` as :func:`evaluate_blocking`
    on the union of the chunks, but holds only the gold matches in memory:
    the ``block_iter`` contract guarantees no pair repeats across chunks, so
    the candidate count is the sum of chunk sizes and recall needs only a
    membership test per candidate against the (small) gold match set.
    """
    true_matches = {pair.key for pair in gold_pairs if pair.label == MATCH}
    recalled: set[tuple[str, str]] = set()
    num_candidates = 0
    for chunk in chunks:
        for key in chunk:
            num_candidates += 1
            if key in true_matches:
                recalled.add(key)
    total_space = max(len(left) * len(right), 1)
    pair_completeness = (len(recalled) / len(true_matches)) if true_matches else 1.0
    return BlockingReport(
        num_candidates=num_candidates,
        num_true_matches=len(true_matches),
        num_recalled_matches=len(recalled),
        pair_completeness=pair_completeness,
        reduction_ratio=1.0 - num_candidates / total_space,
    )
