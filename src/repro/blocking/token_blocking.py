"""Token blocking: records sharing a (rare enough) token become candidates."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.blocking.base import Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import token_set


class TokenBlocker(Blocker):
    """Standard token blocking with a stop-token frequency cut-off.

    Parameters
    ----------
    attributes:
        Attributes whose values feed the blocking keys (``None`` = all).
    max_block_size:
        Tokens appearing in more than this many records *per table* are
        treated as stop tokens and ignored; this bounds the quadratic blow-up
        caused by ubiquitous tokens such as ``"black"`` or ``"camera"``.
    min_token_length:
        Tokens shorter than this are ignored.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        max_block_size: int = 200,
        min_token_length: int = 2,
    ) -> None:
        if max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        if min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.max_block_size = max_block_size
        self.min_token_length = min_token_length

    def _index(self, table: Table) -> dict[str, set[str]]:
        """Token → record-id inverted index of ``table``."""
        index: dict[str, set[str]] = defaultdict(set)
        for record in table:
            text = record_blocking_text(record, self.attributes)
            for token in token_set(text):
                if len(token) >= self.min_token_length:
                    index[token].add(record.record_id)
        return index

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        left_index = self._index(left)
        right_index = self._index(right)
        candidates: set[tuple[str, str]] = set()
        for token, left_ids in left_index.items():
            right_ids = right_index.get(token)
            if not right_ids:
                continue
            if len(left_ids) > self.max_block_size or len(right_ids) > self.max_block_size:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    candidates.add((left_id, right_id))
        return candidates
