"""Token blocking: records sharing a (rare enough) token become candidates."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.blocking._arrays import (
    SortedPostings,
    build_occurrences,
    sorted_unique,
    unpack_pairs,
)
from repro.blocking.base import DEFAULT_CHUNK_SIZE, Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import token_set, token_sets

#: Left rows per internal candidate group of the collect-all :meth:`block`
#: path; bounds the per-group join multiset without changing the result.
_BLOCK_GROUP_ROWS = 2048


class _TokenJoinState(NamedTuple):
    """Stop-filtered occurrence arrays of one table pair, ready to join."""

    left_keys: np.ndarray   # kept left occurrences, sorted by left row
    left_rows: np.ndarray
    postings: SortedPostings
    num_left: int


class TokenBlocker(Blocker):
    """Standard token blocking with a stop-token frequency cut-off.

    Candidate generation is batched: one token → dense-id pass over both
    tables, per-table frequencies via ``np.bincount``, and a sorted-postings
    join of the surviving occurrences — no per-token nested Python loops.
    The seed per-token path remains as :meth:`block_reference`.

    Parameters
    ----------
    attributes:
        Attributes whose values feed the blocking keys (``None`` = all).
    max_block_size:
        Tokens appearing in more than this many records *per table* are
        treated as stop tokens and ignored; this bounds the quadratic blow-up
        caused by ubiquitous tokens such as ``"black"`` or ``"camera"``.
    min_token_length:
        Tokens shorter than this are ignored.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        max_block_size: int = 200,
        min_token_length: int = 2,
    ) -> None:
        if max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        if min_token_length < 1:
            raise ValueError("min_token_length must be >= 1")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.max_block_size = max_block_size
        self.min_token_length = min_token_length

    def _texts(self, table: Table) -> list[str]:
        return [record_blocking_text(record, self.attributes) for record in table]

    def shard_features(self, texts: Sequence[str]) -> list[set[str]]:
        """Length-filtered token sets of ``texts`` (bulk, memoized extraction)."""
        minimum = self.min_token_length
        return [{token for token in features if len(token) >= minimum}
                for features in token_sets(texts)]

    def _prepare(self, left: Table, right: Table) -> _TokenJoinState:
        left_features = self.shard_features(self._texts(left))
        right_features = self.shard_features(self._texts(right))
        left_keys, left_rows, right_keys, right_rows, num_keys = \
            build_occurrences(left_features, right_features)
        # Feature sets contribute each token once per record, so occurrence
        # counts equal the seed's per-table |records containing token|.
        left_counts = np.bincount(left_keys, minlength=num_keys)
        right_counts = np.bincount(right_keys, minlength=num_keys)
        stop = ((left_counts > self.max_block_size)
                | (right_counts > self.max_block_size))
        keep_left = ~stop[left_keys]
        keep_right = ~stop[right_keys]
        left_keys = left_keys[keep_left]
        left_rows = left_rows[keep_left]
        order = np.argsort(left_rows, kind="stable")
        return _TokenJoinState(
            left_keys=left_keys[order],
            left_rows=left_rows[order],
            postings=SortedPostings(right_keys[keep_right],
                                    right_rows[keep_right]),
            num_left=len(left),
        )

    def _group_packed(self, state: _TokenJoinState,
                      row_start: int, row_stop: int) -> np.ndarray:
        """Deduplicated packed pairs of left rows ``[row_start, row_stop)``."""
        lo = np.searchsorted(state.left_rows, row_start, side="left")
        hi = np.searchsorted(state.left_rows, row_stop, side="left")
        return sorted_unique(state.postings.join(state.left_keys[lo:hi],
                                                 state.left_rows[lo:hi]))

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        state = self._prepare(left, right)
        left_ids = left.record_ids
        right_ids = right.record_ids
        candidates: set[tuple[str, str]] = set()
        for start in range(0, state.num_left, _BLOCK_GROUP_ROWS):
            packed = self._group_packed(state, start, start + _BLOCK_GROUP_ROWS)
            rows_l, rows_r = unpack_pairs(packed)
            candidates.update(zip(map(left_ids.__getitem__, rows_l.tolist()),
                                  map(right_ids.__getitem__, rows_r.tolist())))
        return candidates

    def block_iter(self, left: Table, right: Table,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   ) -> Iterator[list[tuple[str, str]]]:
        """Stream candidate chunks; see :meth:`Blocker.block_iter` contract.

        Left rows are processed in contiguous groups (disjoint, so per-group
        dedup is global dedup); peak buffered pairs stay near ``chunk_size``
        and are recorded in ``last_stream_peak``.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        state = self._prepare(left, right)
        left_ids = left.record_ids
        right_ids = right.record_ids
        group_size = max(1, chunk_size // 8)

        def groups() -> Iterator[Iterable[tuple[str, str]]]:
            for start in range(0, state.num_left, group_size):
                packed = self._group_packed(state, start, start + group_size)
                rows_l, rows_r = unpack_pairs(packed)
                yield zip(map(left_ids.__getitem__, rows_l.tolist()),
                          map(right_ids.__getitem__, rows_r.tolist()))

        yield from self._stream_chunks(groups(), chunk_size)

    # -- reference path ------------------------------------------------------ #
    def _index(self, table: Table) -> dict[str, set[str]]:
        """Token → record-id inverted index of ``table``."""
        index: dict[str, set[str]] = defaultdict(set)
        for record in table:
            text = record_blocking_text(record, self.attributes)
            for token in token_set(text):
                if len(token) >= self.min_token_length:
                    index[token].add(record.record_id)
        return index

    def block_reference(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """The seed per-token path: executable specification for :meth:`block`."""
        left_index = self._index(left)
        right_index = self._index(right)
        candidates: set[tuple[str, str]] = set()
        for token, left_ids in left_index.items():
            right_ids = right_index.get(token)
            if not right_ids:
                continue
            if len(left_ids) > self.max_block_size or len(right_ids) > self.max_block_size:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    candidates.add((left_id, right_id))
        return candidates
