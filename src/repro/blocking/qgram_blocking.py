"""Character q-gram blocking: robust to typos in the blocking key."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.blocking.base import Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import qgram_set


class QGramBlocker(Blocker):
    """Blocking on shared character q-grams with a minimum-overlap threshold.

    Two records become a candidate pair when they share at least
    ``min_shared_qgrams`` q-grams that are not stop grams.  Compared to token
    blocking this tolerates typos (a single character edit invalidates at most
    ``q`` grams) at the cost of more candidates.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        q: int = 3,
        min_shared_qgrams: int = 2,
        max_block_size: int = 400,
    ) -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        if min_shared_qgrams < 1:
            raise ValueError("min_shared_qgrams must be >= 1")
        if max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.q = q
        self.min_shared_qgrams = min_shared_qgrams
        self.max_block_size = max_block_size

    def _index(self, table: Table) -> dict[str, set[str]]:
        index: dict[str, set[str]] = defaultdict(set)
        for record in table:
            text = record_blocking_text(record, self.attributes)
            for gram in qgram_set(text, q=self.q):
                index[gram].add(record.record_id)
        return index

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        left_index = self._index(left)
        right_index = self._index(right)
        shared_counts: dict[tuple[str, str], int] = defaultdict(int)
        for gram, left_ids in left_index.items():
            right_ids = right_index.get(gram)
            if not right_ids:
                continue
            if len(left_ids) > self.max_block_size or len(right_ids) > self.max_block_size:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    shared_counts[(left_id, right_id)] += 1
        return {key for key, count in shared_counts.items()
                if count >= self.min_shared_qgrams}
