"""Character q-gram blocking: robust to typos in the blocking key."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro.blocking._arrays import (
    SortedPostings,
    build_occurrences,
    unpack_pairs,
)
from repro.blocking.base import DEFAULT_CHUNK_SIZE, Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import qgram_set, qgram_sets

#: Left rows per internal counting group of the collect-all :meth:`block`
#: path.  All grams of a left record live in its group, so per-pair gram
#: counts are complete within a group and ``min_shared_qgrams`` can be
#: applied group-wise — peak memory is one group's pair multiset, never the
#: table-wide ``dict[(left_id, right_id), int]`` the seed accumulated.
_BLOCK_GROUP_ROWS = 512


class _QGramJoinState(NamedTuple):
    """Stop-filtered gram occurrence arrays of one table pair."""

    left_keys: np.ndarray   # kept left occurrences, sorted by left row
    left_rows: np.ndarray
    postings: SortedPostings
    num_left: int


class QGramBlocker(Blocker):
    """Blocking on shared character q-grams with a minimum-overlap threshold.

    Two records become a candidate pair when they share at least
    ``min_shared_qgrams`` q-grams that are not stop grams.  Compared to token
    blocking this tolerates typos (a single character edit invalidates at most
    ``q`` grams) at the cost of more candidates.

    Shared-gram counting is chunk-wise: left records are processed in
    contiguous groups, each group's gram collisions become a packed pair
    multiset counted with ``np.unique(return_counts=True)``, and the
    threshold is applied per group.  The seed path — one global
    ``dict[(left_id, right_id), int]`` over every collision, whose peak
    memory is the *unfiltered* pair multiset — remains as
    :meth:`block_reference`.

    Parameters
    ----------
    num_shards / num_workers:
        Deterministic contiguous shards for the q-gram extraction pass and
        the process workers computing them (1 = in-process); see
        :mod:`repro.blocking.sharding`.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        q: int = 3,
        min_shared_qgrams: int = 2,
        max_block_size: int = 400,
        num_shards: int = 1,
        num_workers: int = 1,
    ) -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        if min_shared_qgrams < 1:
            raise ValueError("min_shared_qgrams must be >= 1")
        if max_block_size < 1:
            raise ValueError("max_block_size must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.q = q
        self.min_shared_qgrams = min_shared_qgrams
        self.max_block_size = max_block_size
        self.num_shards = num_shards
        self.num_workers = num_workers

    def _texts(self, table: Table) -> list[str]:
        return [record_blocking_text(record, self.attributes) for record in table]

    def shard_features(self, texts: Sequence[str]) -> list[set[str]]:
        """Q-gram sets of one shard of texts (the unit shipped to workers)."""
        return qgram_sets(texts, q=self.q)

    def _table_features(self, table: Table) -> list[set[str]]:
        from repro.blocking.sharding import map_text_shards
        shards = map_text_shards(self, "shard_features", self._texts(table),
                                 num_shards=self.num_shards,
                                 num_workers=self.num_workers)
        return [features for shard in shards for features in shard]

    def _prepare(self, left: Table, right: Table) -> _QGramJoinState:
        left_features = self._table_features(left)
        right_features = self._table_features(right)
        left_keys, left_rows, right_keys, right_rows, num_keys = \
            build_occurrences(left_features, right_features)
        left_counts = np.bincount(left_keys, minlength=num_keys)
        right_counts = np.bincount(right_keys, minlength=num_keys)
        stop = ((left_counts > self.max_block_size)
                | (right_counts > self.max_block_size))
        keep_left = ~stop[left_keys]
        keep_right = ~stop[right_keys]
        left_keys = left_keys[keep_left]
        left_rows = left_rows[keep_left]
        order = np.argsort(left_rows, kind="stable")
        return _QGramJoinState(
            left_keys=left_keys[order],
            left_rows=left_rows[order],
            postings=SortedPostings(right_keys[keep_right],
                                    right_rows[keep_right]),
            num_left=len(left),
        )

    def _group_packed(self, state: _QGramJoinState,
                      row_start: int, row_stop: int) -> np.ndarray:
        """Thresholded packed pairs of left rows ``[row_start, row_stop)``.

        The group's join output is the gram-collision multiset (one entry
        per shared, non-stop gram), so ``np.unique`` counts are exactly the
        seed's ``shared_counts`` values for these left records.
        """
        lo = np.searchsorted(state.left_rows, row_start, side="left")
        hi = np.searchsorted(state.left_rows, row_stop, side="left")
        packed = state.postings.join(state.left_keys[lo:hi],
                                     state.left_rows[lo:hi])
        pairs, counts = np.unique(packed, return_counts=True)
        return pairs[counts >= self.min_shared_qgrams]

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        state = self._prepare(left, right)
        left_ids = left.record_ids
        right_ids = right.record_ids
        candidates: set[tuple[str, str]] = set()
        for start in range(0, state.num_left, _BLOCK_GROUP_ROWS):
            packed = self._group_packed(state, start, start + _BLOCK_GROUP_ROWS)
            rows_l, rows_r = unpack_pairs(packed)
            candidates.update(zip(map(left_ids.__getitem__, rows_l.tolist()),
                                  map(right_ids.__getitem__, rows_r.tolist())))
        return candidates

    def block_iter(self, left: Table, right: Table,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   ) -> Iterator[list[tuple[str, str]]]:
        """Stream candidate chunks; see :meth:`Blocker.block_iter` contract."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        state = self._prepare(left, right)
        left_ids = left.record_ids
        right_ids = right.record_ids
        group_size = max(1, chunk_size // 8)

        def groups() -> Iterator[Iterable[tuple[str, str]]]:
            for start in range(0, state.num_left, group_size):
                packed = self._group_packed(state, start, start + group_size)
                rows_l, rows_r = unpack_pairs(packed)
                yield zip(map(left_ids.__getitem__, rows_l.tolist()),
                          map(right_ids.__getitem__, rows_r.tolist()))

        yield from self._stream_chunks(groups(), chunk_size)

    # -- reference path ------------------------------------------------------ #
    def _index(self, table: Table) -> dict[str, set[str]]:
        index: dict[str, set[str]] = defaultdict(set)
        for record in table:
            text = record_blocking_text(record, self.attributes)
            for gram in qgram_set(text, q=self.q):
                index[gram].add(record.record_id)
        return index

    def block_reference(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """The seed per-gram path: executable specification for :meth:`block`."""
        left_index = self._index(left)
        right_index = self._index(right)
        shared_counts: dict[tuple[str, str], int] = defaultdict(int)
        for gram, left_ids in left_index.items():
            right_ids = right_index.get(gram)
            if not right_ids:
                continue
            if len(left_ids) > self.max_block_size or len(right_ids) > self.max_block_size:
                continue
            for left_id in left_ids:
                for right_id in right_ids:
                    shared_counts[(left_id, right_id)] += 1
        return {key for key, count in shared_counts.items()
                if count >= self.min_shared_qgrams}
