"""Top-k candidate routing: bounded pool sizes under hostile inputs.

Plain banding emits *every* colliding pair, so a duplicate-heavy pool — many
records sharing near-identical text — degrades to a quadratic candidate set.
:class:`TopKCandidateBlocker` caps the damage: band candidates are scored by
estimated Jaccard (fraction of agreeing MinHash signature components) and
only the best ``k`` per left record survive, so the pool is bounded by
``k * |left|`` no matter how pathological the data.  Left records that fall
out of every band (rare vocabulary, typo-dense keys) are routed through the
random-hyperplane LSH index of :mod:`repro.ann.lsh` over hashed feature
vectors — which exact-reranks by cosine similarity — instead of being
silently dropped.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.ann.exact import ExactNearestNeighbors
from repro.ann.lsh import LSHNearestNeighbors
from repro.blocking._arrays import unpack_pairs
from repro.blocking.base import Blocker
from repro.blocking.minhash_lsh import MinHashLSHBlocker
from repro.data.record import Table
from repro.text.vectorizers import HashingVectorizer, HashingVectorizerConfig

#: Soft cap on the signature cells one scoring pass compares (~32 MB of
#: int64); keeps estimated-Jaccard scoring memory flat in the pair count.
_SCORE_CELL_BUDGET = 4_000_000


class TopKCandidateBlocker(Blocker):
    """MinHash banding capped to the ``k`` best candidates per left record.

    Parameters
    ----------
    k:
        Maximum candidates per left record; ties on estimated Jaccard break
        deterministically toward the smaller right-row index.
    ann_fallback:
        Route left records with zero band candidates (and non-empty
        features) through the ANN index; disable for strict
        banding-candidates-only pools.
    ann_num_tables / ann_num_bits / ann_num_features:
        Hyper-parameters of the fallback index: hash tables and bits per
        table of :class:`~repro.ann.lsh.LSHNearestNeighbors`, and the width
        of the hashed feature vectors it indexes.
    num_shards / num_workers:
        Forwarded to the underlying :class:`MinHashLSHBlocker` signature
        build.

    ``block_iter`` is inherited: the pool is already bounded by
    ``k * |left|``, so the default materialize-and-chunk contract is the
    honest memory story here.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        k: int = 10,
        num_permutations: int = 64,
        num_bands: int = 16,
        use_qgrams: bool = False,
        qgram_size: int = 3,
        random_state: RandomState = None,
        ann_fallback: bool = True,
        ann_num_tables: int = 4,
        ann_num_bits: int = 8,
        ann_num_features: int = 128,
        num_shards: int = 1,
        num_workers: int = 1,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = ensure_rng(random_state)
        # Integer sub-seeds instead of shared generator state: every block()
        # call builds its ANN index from a fresh generator over the same
        # seed, so repeated calls (and the banding seed) stay deterministic.
        minhash_seed = int(rng.integers(0, 2**31 - 1))
        self._ann_seed = int(rng.integers(0, 2**31 - 1))
        self.k = k
        self.ann_fallback = ann_fallback
        self.ann_num_tables = ann_num_tables
        self.ann_num_bits = ann_num_bits
        self.ann_num_features = ann_num_features
        self._blocker = MinHashLSHBlocker(
            attributes=attributes,
            num_permutations=num_permutations,
            num_bands=num_bands,
            use_qgrams=use_qgrams,
            qgram_size=qgram_size,
            random_state=minhash_seed,
            num_shards=num_shards,
            num_workers=num_workers,
        )

    @property
    def attributes(self) -> tuple[str, ...] | None:
        return self._blocker.attributes

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        state = self._blocker._prepare(left, right)
        left_rows = np.flatnonzero(~state.left_empty).astype(np.int64)
        packed = self._blocker._group_pairs(state, left_rows)
        rows_l, rows_r = unpack_pairs(packed)
        if rows_l.size:
            scores = self._pair_scores(state, rows_l, rows_r)
            keep = self._topk_mask(rows_l, rows_r, scores)
            rows_l = rows_l[keep]
            rows_r = rows_r[keep]
        left_ids = left.record_ids
        right_ids = right.record_ids
        candidates = set(zip(map(left_ids.__getitem__, rows_l.tolist()),
                             map(right_ids.__getitem__, rows_r.tolist())))
        if self.ann_fallback:
            missing = np.setdiff1d(left_rows, rows_l)
            candidates |= self._fallback_candidates(left, right, state, missing)
        return candidates

    def _pair_scores(self, state, rows_l: np.ndarray,
                     rows_r: np.ndarray) -> np.ndarray:
        """Estimated Jaccard of each candidate pair, computed in blocks."""
        width = state.left_signatures.shape[1]
        scores = np.empty(rows_l.size, dtype=np.float64)
        step = max(1, _SCORE_CELL_BUDGET // max(width, 1))
        for start in range(0, rows_l.size, step):
            stop = start + step
            scores[start:stop] = np.mean(
                state.left_signatures[rows_l[start:stop]]
                == state.right_signatures[rows_r[start:stop]],
                axis=1)
        return scores

    def _topk_mask(self, rows_l: np.ndarray, rows_r: np.ndarray,
                   scores: np.ndarray) -> np.ndarray:
        """Boolean mask keeping the ``k`` best-scored pairs per left row."""
        # Sort by (left row, descending score, right row); the rank of a
        # pair inside its left-row run is then its top-k position.
        order = np.lexsort((rows_r, -scores, rows_l))
        sorted_l = rows_l[order]
        new_group = np.empty(sorted_l.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_l[1:] != sorted_l[:-1]
        group_ids = np.cumsum(new_group) - 1
        starts = np.flatnonzero(new_group)
        ranks = np.arange(sorted_l.size, dtype=np.int64) - starts[group_ids]
        keep = np.zeros(rows_l.size, dtype=bool)
        keep[order[ranks < self.k]] = True
        return keep

    def _fallback_candidates(self, left: Table, right: Table, state,
                             missing: np.ndarray) -> set[tuple[str, str]]:
        """ANN + exact-rerank candidates for band-less left rows."""
        if missing.size == 0:
            return set()
        right_alive = np.flatnonzero(~state.right_empty)
        if right_alive.size == 0:
            return set()
        vectorizer = HashingVectorizer(
            HashingVectorizerConfig(num_features=self.ann_num_features))
        right_texts = self._blocker._texts(right)
        left_texts = self._blocker._texts(left)
        index = LSHNearestNeighbors(
            num_tables=self.ann_num_tables,
            num_bits=self.ann_num_bits,
            random_state=self._ann_seed,
        ).build(vectorizer.transform(
            [right_texts[row] for row in right_alive.tolist()]))
        queries = vectorizer.transform(
            [left_texts[row] for row in missing.tolist()])
        neighbor_rows, _ = index.query(queries, k=self.k)
        # A query whose hash buckets are all empty gets nothing back from the
        # LSH index; those rows (rare — they missed every band *and* every
        # bucket) fall through to an exact top-k rerank, so every non-blank
        # left record ends up with candidates and the pool stays <= k each.
        bucketless = np.flatnonzero((neighbor_rows < 0).all(axis=1))
        if bucketless.size:
            exact = ExactNearestNeighbors().build(index._vectors)
            exact_rows, _ = exact.query(queries[bucketless],
                                        k=min(self.k, right_alive.size))
            neighbor_rows[bucketless, :exact_rows.shape[1]] = exact_rows
        left_ids = left.record_ids
        right_ids = right.record_ids
        candidates: set[tuple[str, str]] = set()
        for row, neighbors in zip(missing.tolist(), neighbor_rows):
            left_id = left_ids[row]
            for neighbor in neighbors:
                if neighbor >= 0:
                    candidates.add(
                        (left_id, right_ids[int(right_alive[neighbor])]))
        return candidates
