"""Deterministic sharding of the blocking index build.

Blocking's per-record work (signature computation, feature extraction) is
embarrassingly parallel: records are partitioned into contiguous shards whose
boundaries depend only on the table size and the shard count — never on the
worker count — so any ``(num_shards, num_workers)`` combination produces
byte-identical shard inputs and, concatenated, byte-identical indexes.

The fan-out reuses the experiment engine's
:meth:`~repro.experiments.engine.ParallelExecutor.map_indexed` and its
spawn-safe initializer pattern: the blocker travels to each worker once
through the pool initializer, tasks carry only the shard's texts, and results
come back in shard order.  The engine import is lazy so the blocking package
stays importable without the experiment stack (and free of import cycles —
the engine never imports blocking).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def shard_ranges(total: int, num_shards: int) -> tuple[tuple[int, int], ...]:
    """Contiguous near-equal ``(start, stop)`` ranges covering ``range(total)``.

    The first ``total % num_shards`` shards get one extra record; empty
    tables produce no shards, and shard counts above ``total`` collapse to
    one record per shard.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if total == 0:
        return ()
    num_shards = min(num_shards, total)
    base, remainder = divmod(total, num_shards)
    ranges = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < remainder else 0)
        ranges.append((start, stop))
        start = stop
    return tuple(ranges)


# Worker-process state, set by the pool initializer (mirrors the experiment
# engine's _WORKER_SETTINGS pattern).
_WORKER_BLOCKER = None


def _init_shard_worker(blocker) -> None:
    """Pool initializer: each worker receives the (picklable) blocker once."""
    global _WORKER_BLOCKER
    _WORKER_BLOCKER = blocker


def _run_shard(task: tuple[str, list[str]]):
    """Top-level (picklable) shard body: call a blocker method on the texts."""
    assert _WORKER_BLOCKER is not None, "shard worker initializer did not run"
    method_name, texts = task
    return getattr(_WORKER_BLOCKER, method_name)(texts)


def map_text_shards(
    blocker,
    method_name: str,
    texts: Sequence[str],
    num_shards: int,
    num_workers: int,
) -> list:
    """Apply ``blocker.<method_name>(shard_texts)`` to every shard, in order.

    With ``num_workers == 1`` (or a single shard) the shards run in-process —
    still through the same shard boundaries, so results are identical to the
    multi-worker path.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    ranges = shard_ranges(len(texts), num_shards)
    if not ranges:
        return []
    if num_workers > 1 and len(ranges) > 1:
        from repro.experiments.engine import ParallelExecutor
        tasks = [(method_name, list(texts[start:stop]))
                 for start, stop in ranges]
        return ParallelExecutor(jobs=num_workers).map_indexed(
            _run_shard, tasks,
            initializer=_init_shard_worker, initargs=(blocker,))
    method = getattr(blocker, method_name)
    return [method(texts[start:stop]) for start, stop in ranges]


def sharded_signatures(
    blocker,
    texts: Sequence[str],
    num_shards: int,
    num_workers: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-table ``(signature matrix, empty mask)`` from per-shard builds.

    Per-record signatures are independent, so vertically stacking the shard
    matrices reproduces the single-shard matrix exactly.
    """
    results = map_text_shards(blocker, "shard_signatures", texts,
                              num_shards, num_workers)
    if not results:
        return blocker.shard_signatures([])
    matrices = [matrix for matrix, _ in results]
    masks = [mask for _, mask in results]
    return np.vstack(matrices), np.concatenate(masks)
