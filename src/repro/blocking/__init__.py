"""Blocking substrate: token, q-gram, and MinHash-LSH blockers plus evaluation."""

from repro.blocking.base import Blocker, record_blocking_text
from repro.blocking.evaluation import BlockingReport, evaluate_blocking
from repro.blocking.minhash_lsh import MinHashLSHBlocker, MinHashSignature
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.token_blocking import TokenBlocker

__all__ = [
    "Blocker",
    "BlockingReport",
    "MinHashLSHBlocker",
    "MinHashSignature",
    "QGramBlocker",
    "TokenBlocker",
    "evaluate_blocking",
    "record_blocking_text",
]
