"""Blocking substrate: token, q-gram, and MinHash-LSH blockers plus evaluation."""

from repro.blocking.base import DEFAULT_CHUNK_SIZE, Blocker, record_blocking_text
from repro.blocking.evaluation import (
    BlockingReport,
    evaluate_blocking,
    evaluate_blocking_stream,
)
from repro.blocking.minhash_lsh import MinHashLSHBlocker, MinHashSignature
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.registry import (
    available_blockers,
    create_blocker,
    get_blocker_factory,
    register_blocker,
)
from repro.blocking.sharding import shard_ranges
from repro.blocking.token_blocking import TokenBlocker
from repro.blocking.topk import TopKCandidateBlocker

__all__ = [
    "Blocker",
    "BlockingReport",
    "DEFAULT_CHUNK_SIZE",
    "MinHashLSHBlocker",
    "MinHashSignature",
    "QGramBlocker",
    "TokenBlocker",
    "TopKCandidateBlocker",
    "available_blockers",
    "create_blocker",
    "evaluate_blocking",
    "evaluate_blocking_stream",
    "get_blocker_factory",
    "record_blocking_text",
    "register_blocker",
    "shard_ranges",
]
