"""MinHash LSH blocking.

Records are represented by their token (or q-gram) sets; MinHash signatures
approximate Jaccard similarity, and banding the signatures into an LSH table
yields candidate pairs whose estimated Jaccard similarity is likely to exceed
the implied threshold.  This is the scalable blocker of the substrate and the
closest analogue to the embedding-based candidate generation used by DIAL.

The batched path computes all signatures of a table as one matrix
(:meth:`MinHashSignature.signature_matrix`), groups band keys as packed
integer arrays instead of ``dict[tuple, list]`` buckets, and streams
candidate pairs in bounded chunks (:meth:`MinHashLSHBlocker.block_iter`).
The seed per-record path is kept as the executable specification
(:meth:`MinHashSignature.signature`, :meth:`MinHashLSHBlocker.block_reference`)
and the batched path is property-tested bit-identical to it.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.blocking._arrays import (
    SortedPostings,
    pack_pairs,
    sorted_unique,
    unpack_pairs,
)
from repro.blocking.base import DEFAULT_CHUNK_SIZE, Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import qgram_set, qgram_sets, token_set, token_sets

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1

#: Feature string → crc32 value, shared by every signature computation in the
#: process.  crc32 is permutation-independent, so one cache serves every
#: :class:`MinHashSignature` instance and every table: each distinct
#: token/q-gram is hashed once ever (the PR 4 vectorizer trick applied to
#: blocking).
_CRC_CACHE: dict[str, int] = {}

#: Soft cap on the int64 cells one blocked permutation pass may materialize
#: (~64 MB); keeps :meth:`MinHashSignature.signature_matrix` peak memory flat
#: in the number of records by processing permutation rows in blocks.
_BLOCK_CELL_BUDGET = 8_000_000

_EMPTY_PAIRS = np.empty(0, dtype=np.uint64)


class MinHashSignature:
    """Computes MinHash signatures for sets of string features."""

    def __init__(self, num_permutations: int = 64, random_state: RandomState = None) -> None:
        if num_permutations < 1:
            raise ValueError("num_permutations must be >= 1")
        rng = ensure_rng(random_state)
        self.num_permutations = num_permutations
        # The multiplier is capped at 2^30 so that a * x with x < 2^32 stays
        # below 2^62 (a * x + b < 2^62 + 2^61 fits int64) — drawing a from
        # [1, p) as textbook universal hashing suggests would silently
        # overflow int64 in the outer product and wrap to mathematically
        # wrong (even negative) values.  b keeps the full [0, p) range.
        self._a = rng.integers(1, 1 << 30, size=num_permutations, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)

    def signature(self, features: Iterable[str]) -> np.ndarray:
        """MinHash signature of a feature set (vector of ``num_permutations`` ints).

        Features are hashed with ``zlib.crc32`` over their UTF-8 bytes — a
        stable 32-bit hash — rather than the builtin ``hash()``, whose
        per-process salt (``PYTHONHASHSEED``) would make LSH candidate sets
        differ between runs.

        This is the per-record reference path; the batched
        :meth:`signature_matrix` is bit-identical to stacking it.
        """
        hashed = np.fromiter((zlib.crc32(feature.encode("utf-8")) & _MAX_HASH
                              for feature in features), dtype=np.int64)
        if hashed.size == 0:
            return np.full(self.num_permutations, _MAX_HASH, dtype=np.int64)
        # (a * x + b) mod p, truncated to the low 32 bits, for every
        # permutation / feature combination.  Masking with & keeps the full
        # [0, 2^32) range; the previous % (2^32 - 1) biased the distribution
        # and aliased 0 with 2^32 - 1.
        products = (np.outer(self._a, hashed) + self._b[:, None]) % _MERSENNE_PRIME
        return (products & _MAX_HASH).min(axis=1)

    def signature_matrix(self, features_list: Sequence[Iterable[str]]) -> np.ndarray:
        """MinHash signatures of many feature sets as one ``(n, P)`` matrix.

        Bit-identical to ``np.vstack([self.signature(f) for f in
        features_list])``: the same int64 ``(a * x + b) mod p`` arithmetic is
        applied to the same hash values, only organized differently — each
        distinct feature string is crc32-hashed once ever through the shared
        process-wide cache, every *unique* hash value is permuted once, and
        per-record minima are taken with one ``np.minimum.reduceat`` per
        permutation block.  Records with no features receive the
        all-``_MAX_HASH`` sentinel row, exactly like :meth:`signature`.

        Records sharing one feature-set *object* (the bulk extractors of
        :mod:`repro.text.tokenization` return shared sets for duplicate
        texts) are computed once and broadcast — the record-dedup trick of
        the batched featurizer, free on catalogs with templated values.
        """
        n = len(features_list)
        if n == 0:
            return np.full((n, self.num_permutations), _MAX_HASH,
                           dtype=np.int64)
        first_row: dict[int, int] = {}
        mapping = np.empty(n, dtype=np.int64)
        distinct: list[Iterable[str]] = []
        for index, features in enumerate(features_list):
            row = first_row.setdefault(id(features), len(distinct))  # repro: noqa[ND002] object-identity dedup within one call; ids never outlive the batch or order anything
            if row == len(distinct):
                distinct.append(features)
            mapping[index] = row
        if len(distinct) < n:
            return self._signature_matrix_distinct(distinct)[mapping]
        return self._signature_matrix_distinct(list(features_list))

    def _signature_matrix_distinct(
            self, features_list: list[Iterable[str]]) -> np.ndarray:
        """The batched signature pass over already-deduplicated feature sets."""
        num_permutations = self.num_permutations
        n = len(features_list)
        signatures = np.full((n, num_permutations), _MAX_HASH, dtype=np.int64)
        cache = _CRC_CACHE
        flat: list[str] = []
        lengths = np.zeros(n, dtype=np.int64)
        for index, features in enumerate(features_list):
            before = len(flat)
            flat.extend(features)
            lengths[index] = len(flat) - before
        total = len(flat)
        if total == 0:
            return signatures
        # Hash each distinct feature string once ever (the cache is process
        # wide), then map the flat occurrence list through the cache at C
        # speed — the per-occurrence Python loop was the batch bottleneck on
        # q-gram pools.  dict.fromkeys dedups in first-occurrence order, so
        # cache insertion order is a function of the input, not of set
        # iteration order (crc32 values are order-independent anyway, but
        # deterministic iteration keeps the cache dict bit-reproducible).
        for feature in dict.fromkeys(flat):
            if feature not in cache:
                cache[feature] = zlib.crc32(feature.encode("utf-8")) & _MAX_HASH
        hashed = np.fromiter(map(cache.__getitem__, flat), dtype=np.int64,
                             count=total)
        unique_hashes, inverse = np.unique(hashed, return_inverse=True)
        nonempty = np.flatnonzero(lengths)
        # Segment starts of the nonempty records inside the flat feature
        # array (empty records contribute zero elements, so dropping them
        # keeps np.minimum.reduceat's segments well-formed).
        offsets = (np.cumsum(lengths) - lengths)[nonempty]
        rows_per_block = max(1, _BLOCK_CELL_BUDGET // total)
        for start in range(0, num_permutations, rows_per_block):
            stop = min(start + rows_per_block, num_permutations)
            products = (self._a[start:stop, None] * unique_hashes[None, :]
                        + self._b[start:stop, None]) % _MERSENNE_PRIME
            permuted = products & _MAX_HASH
            minima = np.minimum.reduceat(permuted[:, inverse], offsets, axis=1)
            signatures[nonempty, start:stop] = minima.T
        return signatures

    @staticmethod
    def estimated_jaccard(signature_a: np.ndarray, signature_b: np.ndarray) -> float:
        """Estimate Jaccard similarity as the fraction of agreeing components."""
        if signature_a.shape != signature_b.shape:
            raise ValueError("Signatures must have identical shapes")
        return float(np.mean(signature_a == signature_b))


class _BandIndex:
    """One band's right-side buckets as arrays, exactly (no hash collisions).

    Band keys are ``rows_per_band`` 32-bit signature components.  They are
    reduced to single integer codes by iterated exact factorization: two
    columns are packed into one ``uint64`` (both fit in 32 bits), ranked
    through ``np.unique``, and the dense ranks (< 2^32) packed with the next
    column.  Left-side keys are translated into the same code space with
    ``np.searchsorted`` against the per-step rank tables; keys absent from
    any table cannot collide with a right record and drop out.  Grouping is
    therefore ``np.argsort``/``np.unique`` over flat integer arrays — no
    ``dict[tuple, list]`` buckets — and, being exact, candidate sets match
    the tuple-keyed reference bit for bit.
    """

    def __init__(self, right_band: np.ndarray, right_rows: np.ndarray) -> None:
        codes = right_band[:, 0].astype(np.uint64) if right_band.size else \
            np.empty(0, dtype=np.uint64)
        self._tables: list[np.ndarray] = []
        for column in range(1, right_band.shape[1]):
            packed = ((codes << np.uint64(32))
                      | right_band[:, column].astype(np.uint64))
            table, inverse = np.unique(packed, return_inverse=True)
            self._tables.append(table)
            codes = inverse.astype(np.uint64)
        self._num_columns = right_band.shape[1]
        self._postings = SortedPostings(codes, right_rows)

    def join(self, left_band: np.ndarray, left_rows: np.ndarray) -> np.ndarray:
        """Packed candidate pairs of ``left_band`` rows against this band."""
        if left_band.shape[0] == 0 or self._postings.keys.size == 0:
            return _EMPTY_PAIRS
        codes = left_band[:, 0].astype(np.uint64)
        alive = np.ones(left_band.shape[0], dtype=bool)
        for column, table in enumerate(self._tables, start=1):
            if table.size == 0:
                return _EMPTY_PAIRS
            packed = ((codes << np.uint64(32))
                      | left_band[:, column].astype(np.uint64))
            positions = np.searchsorted(table, packed)
            clipped = np.minimum(positions, table.size - 1)
            alive &= (positions < table.size) & (table[clipped] == packed)
            codes = positions.astype(np.uint64)
        return self._postings.join(codes[alive], left_rows[alive])


class _BlockingState(NamedTuple):
    """Everything a banded candidate pass needs, built once per table pair."""

    left_signatures: np.ndarray
    left_empty: np.ndarray
    right_signatures: np.ndarray
    right_empty: np.ndarray
    band_indexes: tuple[_BandIndex, ...]


class MinHashLSHBlocker(Blocker):
    """LSH banding over MinHash signatures.

    Parameters
    ----------
    num_permutations:
        Signature length; must be divisible by ``num_bands``.
    num_bands:
        Number of LSH bands; more bands → lower effective similarity threshold.
    use_qgrams:
        Feature sets are character q-grams instead of word tokens.
    num_shards:
        Deterministic contiguous shards for the signature build.  Shard
        boundaries depend only on the table size and the shard count, never
        on the worker count, so any sharding produces identical signatures.
    num_workers:
        Process workers computing signature shards (1 = in-process).  Fanned
        out through the experiment engine's
        :meth:`~repro.experiments.engine.ParallelExecutor.map_indexed`,
        reusing its spawn-safe initializer pattern.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        num_permutations: int = 64,
        num_bands: int = 16,
        use_qgrams: bool = False,
        qgram_size: int = 3,
        random_state: RandomState = None,
        num_shards: int = 1,
        num_workers: int = 1,
    ) -> None:
        if num_permutations % num_bands != 0:
            raise ValueError("num_permutations must be divisible by num_bands")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.num_bands = num_bands
        self.rows_per_band = num_permutations // num_bands
        self.use_qgrams = use_qgrams
        self.qgram_size = qgram_size
        self.num_shards = num_shards
        self.num_workers = num_workers
        self._minhash = MinHashSignature(num_permutations, random_state)

    # -- feature extraction -------------------------------------------------- #
    def _features(self, text: str) -> set[str]:
        if self.use_qgrams:
            return qgram_set(text, q=self.qgram_size)
        return token_set(text)

    def _features_list(self, texts: Sequence[str]) -> list[set[str]]:
        if self.use_qgrams:
            return qgram_sets(texts, q=self.qgram_size)
        return token_sets(texts)

    def _texts(self, table: Table) -> list[str]:
        return [record_blocking_text(record, self.attributes) for record in table]

    def shard_signatures(self, texts: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
        """Signature matrix and empty-feature mask of one shard of texts.

        This is the unit of work the sharded index build ships to pool
        workers; per-record signatures are independent, so shard results
        concatenate into exactly the whole-table matrix.
        """
        features_list = self._features_list(texts)
        matrix = self._minhash.signature_matrix(features_list)
        empty = np.fromiter((len(features) == 0 for features in features_list),
                            dtype=bool, count=len(features_list))
        return matrix, empty

    def _table_signatures(self, table: Table) -> tuple[np.ndarray, np.ndarray]:
        from repro.blocking.sharding import sharded_signatures
        return sharded_signatures(self, self._texts(table),
                                  num_shards=self.num_shards,
                                  num_workers=self.num_workers)

    # -- banded candidate generation ----------------------------------------- #
    def _prepare(self, left: Table, right: Table) -> _BlockingState:
        """Signatures for both tables plus one :class:`_BandIndex` per band.

        Empty-feature records are excluded from every band on both sides:
        their sentinel signatures would otherwise collide with every other
        blank record in every band (quadratic blowup on dirty pools).
        """
        left_signatures, left_empty = self._table_signatures(left)
        right_signatures, right_empty = self._table_signatures(right)
        right_rows = np.flatnonzero(~right_empty).astype(np.int64)
        band_indexes = []
        for band in range(self.num_bands):
            start = band * self.rows_per_band
            end = start + self.rows_per_band
            band_indexes.append(
                _BandIndex(right_signatures[right_rows, start:end], right_rows))
        return _BlockingState(left_signatures, left_empty,
                              right_signatures, right_empty,
                              tuple(band_indexes))

    def _group_pairs(self, state: _BlockingState,
                     left_rows: np.ndarray) -> np.ndarray:
        """Sorted, deduplicated packed pairs of ``left_rows`` across all bands.

        All band joins are concatenated before the single sort-based dedup:
        one O(m log m) pass beats per-band incremental merging, and the
        transient multiset is bounded because callers pass bounded left-row
        groups (``block_iter``) or accept the full pool anyway (``block``).
        """
        joined = [index.join(state.left_signatures[
                                 left_rows,
                                 band * self.rows_per_band:
                                 (band + 1) * self.rows_per_band],
                             left_rows)
                  for band, index in enumerate(state.band_indexes)]
        if not joined:
            return _EMPTY_PAIRS
        return sorted_unique(np.concatenate(joined))

    @staticmethod
    def _pairs_to_keys(packed: np.ndarray, left_ids: Sequence[str],
                       right_ids: Sequence[str]) -> Iterator[tuple[str, str]]:
        left_rows, right_rows = unpack_pairs(packed)
        return zip(map(left_ids.__getitem__, left_rows.tolist()),
                   map(right_ids.__getitem__, right_rows.tolist()))

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """Candidate keys via the batched banded path.

        Set-identical to :meth:`block_reference` (the seed per-record path),
        which stays as the executable specification.
        """
        state = self._prepare(left, right)
        left_rows = np.flatnonzero(~state.left_empty).astype(np.int64)
        packed = self._group_pairs(state, left_rows)
        return set(self._pairs_to_keys(packed, left.record_ids,
                                       right.record_ids))

    def block_iter(self, left: Table, right: Table,
                   chunk_size: int = DEFAULT_CHUNK_SIZE,
                   ) -> Iterator[list[tuple[str, str]]]:
        """Stream deduplicated candidate chunks of at most ``chunk_size`` pairs.

        Left records are processed in contiguous groups; groups partition the
        left table, so their candidate sets are disjoint and per-group
        ``np.unique`` dedup is global dedup — no all-pairs set is ever
        materialized.  Peak buffered candidates stay below ``chunk_size``
        plus one group's candidates (recorded in ``last_stream_peak``), and
        the union of all chunks equals :meth:`block`.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        state = self._prepare(left, right)
        left_ids = left.record_ids
        right_ids = right.record_ids
        left_rows = np.flatnonzero(~state.left_empty).astype(np.int64)
        group_size = max(1, chunk_size // 8)

        def groups() -> Iterator[Iterable[tuple[str, str]]]:
            for start in range(0, left_rows.size, group_size):
                packed = self._group_pairs(state,
                                           left_rows[start:start + group_size])
                yield self._pairs_to_keys(packed, left_ids, right_ids)

        yield from self._stream_chunks(groups(), chunk_size)

    # -- reference path ------------------------------------------------------ #
    def block_reference(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """The seed per-record path: executable specification for :meth:`block`.

        Kept verbatim from the seed implementation except for the
        empty-signature fix applied to both paths: records with no features
        used to receive the all-``_MAX_HASH`` sentinel signature and so
        collided with every other blank record in every band; featureless
        records are now skipped during banding.
        """
        left_signatures = self._signatures_reference(left)
        right_signatures = self._signatures_reference(right)

        candidates: set[tuple[str, str]] = set()
        for band in range(self.num_bands):
            start = band * self.rows_per_band
            end = start + self.rows_per_band
            buckets: dict[tuple[int, ...], list[str]] = defaultdict(list)
            for record_id, signature in left_signatures.items():
                buckets[tuple(signature[start:end])].append(record_id)
            for record_id, signature in right_signatures.items():
                key = tuple(signature[start:end])
                for left_id in buckets.get(key, ()):
                    candidates.add((left_id, record_id))
        return candidates

    def _signatures_reference(self, table: Table) -> dict[str, np.ndarray]:
        signatures: dict[str, np.ndarray] = {}
        for record in table:
            features = self._features(
                record_blocking_text(record, self.attributes))
            if not features:
                continue
            signatures[record.record_id] = self._minhash.signature(features)
        return signatures
