"""MinHash LSH blocking.

Records are represented by their token (or q-gram) sets; MinHash signatures
approximate Jaccard similarity, and banding the signatures into an LSH table
yields candidate pairs whose estimated Jaccard similarity is likely to exceed
the implied threshold.  This is the scalable blocker of the substrate and the
closest analogue to the embedding-based candidate generation used by DIAL.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Iterable

import numpy as np

from repro._rng import RandomState, ensure_rng
from repro.blocking.base import Blocker, record_blocking_text
from repro.data.record import Table
from repro.text.tokenization import qgram_set, token_set

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


class MinHashSignature:
    """Computes MinHash signatures for sets of string features."""

    def __init__(self, num_permutations: int = 64, random_state: RandomState = None) -> None:
        if num_permutations < 1:
            raise ValueError("num_permutations must be >= 1")
        rng = ensure_rng(random_state)
        self.num_permutations = num_permutations
        # The multiplier is capped at 2^30 so that a * x with x < 2^32 stays
        # below 2^62 (a * x + b < 2^62 + 2^61 fits int64) — drawing a from
        # [1, p) as textbook universal hashing suggests would silently
        # overflow int64 in the outer product and wrap to mathematically
        # wrong (even negative) values.  b keeps the full [0, p) range.
        self._a = rng.integers(1, 1 << 30, size=num_permutations, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)

    def signature(self, features: Iterable[str]) -> np.ndarray:
        """MinHash signature of a feature set (vector of ``num_permutations`` ints).

        Features are hashed with ``zlib.crc32`` over their UTF-8 bytes — a
        stable 32-bit hash — rather than the builtin ``hash()``, whose
        per-process salt (``PYTHONHASHSEED``) would make LSH candidate sets
        differ between runs.
        """
        hashed = np.fromiter((zlib.crc32(feature.encode("utf-8")) & _MAX_HASH
                              for feature in features), dtype=np.int64)
        if hashed.size == 0:
            return np.full(self.num_permutations, _MAX_HASH, dtype=np.int64)
        # (a * x + b) mod p, truncated to the low 32 bits, for every
        # permutation / feature combination.  Masking with & keeps the full
        # [0, 2^32) range; the previous % (2^32 - 1) biased the distribution
        # and aliased 0 with 2^32 - 1.
        products = (np.outer(self._a, hashed) + self._b[:, None]) % _MERSENNE_PRIME
        return (products & _MAX_HASH).min(axis=1)

    @staticmethod
    def estimated_jaccard(signature_a: np.ndarray, signature_b: np.ndarray) -> float:
        """Estimate Jaccard similarity as the fraction of agreeing components."""
        if signature_a.shape != signature_b.shape:
            raise ValueError("Signatures must have identical shapes")
        return float(np.mean(signature_a == signature_b))


class MinHashLSHBlocker(Blocker):
    """LSH banding over MinHash signatures.

    Parameters
    ----------
    num_permutations:
        Signature length; must be divisible by ``num_bands``.
    num_bands:
        Number of LSH bands; more bands → lower effective similarity threshold.
    use_qgrams:
        Feature sets are character q-grams instead of word tokens.
    """

    def __init__(
        self,
        attributes: Iterable[str] | None = None,
        num_permutations: int = 64,
        num_bands: int = 16,
        use_qgrams: bool = False,
        qgram_size: int = 3,
        random_state: RandomState = None,
    ) -> None:
        if num_permutations % num_bands != 0:
            raise ValueError("num_permutations must be divisible by num_bands")
        self.attributes = tuple(attributes) if attributes is not None else None
        self.num_bands = num_bands
        self.rows_per_band = num_permutations // num_bands
        self.use_qgrams = use_qgrams
        self.qgram_size = qgram_size
        self._minhash = MinHashSignature(num_permutations, random_state)

    def _features(self, text: str) -> set[str]:
        if self.use_qgrams:
            return qgram_set(text, q=self.qgram_size)
        return token_set(text)

    def _signatures(self, table: Table) -> dict[str, np.ndarray]:
        return {
            record.record_id: self._minhash.signature(
                self._features(record_blocking_text(record, self.attributes))
            )
            for record in table
        }

    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        left_signatures = self._signatures(left)
        right_signatures = self._signatures(right)

        candidates: set[tuple[str, str]] = set()
        for band in range(self.num_bands):
            start = band * self.rows_per_band
            end = start + self.rows_per_band
            buckets: dict[tuple[int, ...], list[str]] = defaultdict(list)
            for record_id, signature in left_signatures.items():
                buckets[tuple(signature[start:end])].append(record_id)
            for record_id, signature in right_signatures.items():
                key = tuple(signature[start:end])
                for left_id in buckets.get(key, ()):
                    candidates.add((left_id, record_id))
        return candidates
