"""Blocker registry: construct blockers declaratively by name.

Mirrors the registry conventions of :mod:`repro.datasets.registry` and the
scenario registry: a name → factory mapping with did-you-mean lookup errors
(:func:`repro._suggest.unknown_name_message`), so experiment manifests can
name a blocker and the lint pass can validate it before anything runs.
"""

from __future__ import annotations

from typing import Callable

from repro._suggest import unknown_name_message
from repro.blocking.base import Blocker
from repro.blocking.minhash_lsh import MinHashLSHBlocker
from repro.blocking.qgram_blocking import QGramBlocker
from repro.blocking.token_blocking import TokenBlocker
from repro.blocking.topk import TopKCandidateBlocker
from repro.exceptions import ConfigurationError

#: Factory signature: keyword arguments forwarded verbatim to the blocker.
BlockerFactory = Callable[..., Blocker]

_BLOCKER_FACTORIES: dict[str, BlockerFactory] = {}


def register_blocker(name: str, factory: BlockerFactory,
                     replace: bool = False) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises unless ``replace`` is set — a
    silent overwrite would let two manifests mean different blockers by the
    same name.
    """
    if not replace and name in _BLOCKER_FACTORIES:
        raise ConfigurationError(
            f"Blocker {name!r} is already registered; pass replace=True to "
            f"overwrite it")
    _BLOCKER_FACTORIES[name] = factory


def available_blockers() -> tuple[str, ...]:
    """Registered blocker names, sorted."""
    return tuple(sorted(_BLOCKER_FACTORIES))


def get_blocker_factory(name: str) -> BlockerFactory:
    """Look up the factory for ``name`` (did-you-mean error when unknown)."""
    try:
        return _BLOCKER_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            unknown_name_message("blocker", name, _BLOCKER_FACTORIES)) from None


def create_blocker(name: str, **kwargs) -> Blocker:
    """Instantiate the blocker registered under ``name``."""
    return get_blocker_factory(name)(**kwargs)


register_blocker("token", TokenBlocker)
register_blocker("qgram", QGramBlocker)
register_blocker("minhash", MinHashLSHBlocker)
register_blocker(
    "minhash-qgram",
    lambda **kwargs: MinHashLSHBlocker(use_qgrams=True, **kwargs))
register_blocker("topk-minhash", TopKCandidateBlocker)
