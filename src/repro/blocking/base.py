"""Blocking: reducing the quadratic candidate pair space.

The paper assumes candidate pairs are given (the matching phase is its focus),
but blocking is still part of the substrate: the DIAL baseline co-learns a
blocker, the synthetic benchmarks emulate a blocker's output through
family-based hard negatives, and real datasets loaded through
:mod:`repro.data.io` may need candidate generation.  A :class:`Blocker` maps
two tables to a set of candidate ``(left_id, right_id)`` keys.
"""

from __future__ import annotations

import abc
from typing import Iterable

from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table


class Blocker(abc.ABC):
    """Base class for blocking strategies."""

    @abc.abstractmethod
    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """Return candidate ``(left_id, right_id)`` keys."""

    def candidate_pairs(
        self,
        left: Table,
        right: Table,
        labels: dict[tuple[str, str], int] | None = None,
        prefix: str = "b",
    ) -> PairSet:
        """Materialize the blocked keys into a :class:`PairSet`.

        Parameters
        ----------
        labels:
            Optional gold labels keyed by ``(left_id, right_id)``; keys absent
            from the mapping produce unlabeled pairs.
        """
        labels = labels or {}
        pairs = PairSet()
        for index, (left_id, right_id) in enumerate(sorted(self.block(left, right))):
            label = labels.get((left_id, right_id))
            pairs.add(CandidatePair(f"{prefix}{index}", left_id, right_id, label))
        return pairs


def record_blocking_text(record: Record, attributes: Iterable[str] | None = None) -> str:
    """Concatenate the attribute values a blocker keys on."""
    if attributes is None:
        return record.text()
    return record.text(attributes)
