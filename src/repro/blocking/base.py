"""Blocking: reducing the quadratic candidate pair space.

The paper assumes candidate pairs are given (the matching phase is its focus),
but blocking is still part of the substrate: the DIAL baseline co-learns a
blocker, the synthetic benchmarks emulate a blocker's output through
family-based hard negatives, and real datasets loaded through
:mod:`repro.data.io` may need candidate generation.  A :class:`Blocker` maps
two tables to a set of candidate ``(left_id, right_id)`` keys.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator

from repro.data.pair import CandidatePair, PairSet
from repro.data.record import Record, Table

#: Default number of candidate pairs per :meth:`Blocker.block_iter` chunk.
DEFAULT_CHUNK_SIZE = 10_000


class Blocker(abc.ABC):
    """Base class for blocking strategies."""

    #: Peak number of candidate pairs buffered by the most recent
    #: :meth:`block_iter` run.  Streaming implementations bound this by
    #: roughly ``chunk_size`` plus one left-group's candidates; the default
    #: (materializing) implementation reports the full candidate count.
    last_stream_peak: int = 0

    @abc.abstractmethod
    def block(self, left: Table, right: Table) -> set[tuple[str, str]]:
        """Return candidate ``(left_id, right_id)`` keys."""

    def block_iter(
        self,
        left: Table,
        right: Table,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[list[tuple[str, str]]]:
        """Yield the candidate keys as deduplicated chunks.

        Contract (all implementations): each chunk holds at most
        ``chunk_size`` pairs, no pair appears twice across the stream, and
        the union of all chunks equals :meth:`block`.  This default
        materializes :meth:`block` and slices it — correct for any blocker —
        while streaming blockers override it to keep peak candidate memory
        proportional to ``chunk_size`` instead of the full pair set.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        ordered = sorted(self.block(left, right))
        self.last_stream_peak = len(ordered)
        for start in range(0, len(ordered), chunk_size):
            yield ordered[start:start + chunk_size]

    def _stream_chunks(
        self,
        groups: Iterator[Iterable[tuple[str, str]]],
        chunk_size: int,
    ) -> Iterator[list[tuple[str, str]]]:
        """Re-chunk per-group candidate iterables into ``chunk_size`` lists.

        Shared buffering loop of the streaming ``block_iter`` overrides:
        ``groups`` must yield internally-deduplicated, pairwise-disjoint
        candidate groups (streaming blockers partition the left table to get
        this for free).  Tracks the peak buffer occupancy in
        ``last_stream_peak`` so tests can assert the memory bound.
        """
        buffer: list[tuple[str, str]] = []
        peak = 0
        self.last_stream_peak = 0
        for group in groups:
            buffer.extend(group)
            if len(buffer) > peak:
                peak = len(buffer)
                self.last_stream_peak = peak
            while len(buffer) >= chunk_size:
                yield buffer[:chunk_size]
                del buffer[:chunk_size]
        if buffer:
            yield buffer

    def candidate_pairs(
        self,
        left: Table,
        right: Table,
        labels: dict[tuple[str, str], int] | None = None,
        prefix: str = "b",
    ) -> PairSet:
        """Materialize the blocked keys into a :class:`PairSet`.

        Parameters
        ----------
        labels:
            Optional gold labels keyed by ``(left_id, right_id)``; keys absent
            from the mapping produce unlabeled pairs.
        """
        labels = labels or {}
        pairs = PairSet()
        for index, (left_id, right_id) in enumerate(sorted(self.block(left, right))):
            label = labels.get((left_id, right_id))
            pairs.add(CandidatePair(f"{prefix}{index}", left_id, right_id, label))
        return pairs


def record_blocking_text(record: Record, attributes: Iterable[str] | None = None) -> str:
    """Concatenate the attribute values a blocker keys on."""
    if attributes is None:
        return record.text()
    return record.text(attributes)
