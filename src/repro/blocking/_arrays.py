"""Array primitives shared by the batched blockers.

Every batched blocker reduces candidate generation to the same two steps:
join left occurrences against right occurrences on an integer key (band
code, token id, gram id), then deduplicate the resulting ``(left, right)``
index pairs.  Pairs are packed into single ``uint64`` values
(``left_index << 32 | right_index``) so deduplication is one
:func:`numpy.unique` over a flat array instead of a Python ``set`` of
tuples, and merging across bands/shards is a sorted-array union.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_PAIR_SHIFT = np.uint64(32)
_PAIR_MASK = np.uint64((1 << 32) - 1)

_EMPTY_PAIRS = np.empty(0, dtype=np.uint64)


def pack_pairs(left_rows: np.ndarray, right_rows: np.ndarray) -> np.ndarray:
    """Pack parallel index arrays into ``left << 32 | right`` uint64 values.

    Exact (collision-free) for tables below 2^32 records, which also bounds
    every other index in the package.
    """
    return ((left_rows.astype(np.uint64) << _PAIR_SHIFT)
            | right_rows.astype(np.uint64))


def unpack_pairs(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_pairs`: ``(left_rows, right_rows)`` as int64."""
    return ((packed >> _PAIR_SHIFT).astype(np.int64),
            (packed & _PAIR_MASK).astype(np.int64))


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct elements of ``values`` via an explicit sort.

    Equivalent to ``np.unique(values)`` but markedly faster on the packed
    uint64 pair arrays blocking produces: recent numpy routes plain integer
    ``unique`` calls through a hash table, which loses badly to a plain
    ``sort`` plus neighbor-comparison dedup on data of this shape.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def build_occurrences(
    left_features: Sequence[set[str]],
    right_features: Sequence[set[str]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Integer-keyed ``(key, row)`` occurrence arrays of two feature lists.

    Dense key ids are assigned over the left table's features; right
    occurrences keep only keys also present on the left (a key exclusive to
    one side cannot produce a pair, and dropping it early keeps the arrays —
    and the per-key frequency ``np.bincount`` — small).  Returns
    ``(left_keys, left_rows, right_keys, right_rows, num_keys)``.
    """
    key_ids: dict[str, int] = {}
    left_keys: list[int] = []
    left_rows: list[int] = []
    for row, features in enumerate(left_features):
        for feature in features:
            left_keys.append(key_ids.setdefault(feature, len(key_ids)))
            left_rows.append(row)
    right_keys: list[int] = []
    right_rows: list[int] = []
    for row, features in enumerate(right_features):
        for feature in features:
            key = key_ids.get(feature)
            if key is not None:
                right_keys.append(key)
                right_rows.append(row)
    return (np.array(left_keys, dtype=np.int64),
            np.array(left_rows, dtype=np.int64),
            np.array(right_keys, dtype=np.int64),
            np.array(right_rows, dtype=np.int64),
            len(key_ids))


class SortedPostings:
    """Right-side occurrences ``(key, row)`` sorted by key, joinable in bulk.

    Built once per index (band, token table, gram table); :meth:`join` then
    answers "which right rows share a key with each left occurrence" with two
    :func:`numpy.searchsorted` passes and pure index arithmetic — no
    per-bucket Python loop, no ``dict[key, list]``.
    """

    def __init__(self, keys: np.ndarray, rows: np.ndarray) -> None:
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.rows = rows[order]

    def join(self, left_keys: np.ndarray, left_rows: np.ndarray) -> np.ndarray:
        """Packed pairs for every (left occurrence × matching right row).

        The output may contain duplicates when a left row carries the same
        key several times (it cannot here: occurrences are per distinct
        feature) or when the caller concatenates joins; dedup with
        :func:`sorted_unique`.
        """
        if left_keys.size == 0 or self.keys.size == 0:
            return _EMPTY_PAIRS
        lo = np.searchsorted(self.keys, left_keys, side="left")
        hi = np.searchsorted(self.keys, left_keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_PAIRS
        left_out = np.repeat(left_rows, counts)
        # Position of each output pair inside its left occurrence's range.
        starts = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        right_out = self.rows[np.repeat(lo, counts) + within]
        return pack_pairs(left_out, right_out)
