"""Reproducing the Figure 1 observation: match pairs cluster in latent space.

Trains the matcher on the full training split of two benchmarks, extracts the
pair representations (the ``[CLS]`` analogue), reduces them to two dimensions
with the from-scratch t-SNE, and prints the concentration statistics that
motivate the battleship approach.  The 2-D coordinates are written to CSV so
they can be plotted with any external tool.

Run with::

    python examples/latent_space_exploration.py
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.configs import ExperimentSettings
from repro.experiments.figures import figure1_latent_space
from repro.config import get_scale
from repro.evaluation import format_table
from repro.neural.featurizer import FeaturizerConfig
from repro.neural.matcher import MatcherConfig


def main() -> None:
    settings = ExperimentSettings(
        scale=get_scale("tiny"),
        datasets=("amazon_google", "walmart_amazon"),
        iterations=2, budget_per_iteration=20, seed_size=20, num_seeds=1,
        alphas=(0.5,), beta=0.5,
        matcher_config=MatcherConfig(hidden_dims=(96, 48), epochs=8, batch_size=16,
                                     learning_rate=2e-3, random_state=0),
        featurizer_config=FeaturizerConfig(hash_dim=128),
        base_random_seed=7,
    )

    output_dir = Path("latent_space_output")
    output_dir.mkdir(exist_ok=True)
    rows = []
    for name in settings.datasets:
        report = figure1_latent_space(name, settings, max_points=250, run_tsne=True)
        rows.append(report.as_row())

        csv_path = output_dir / f"{name}_tsne.csv"
        with csv_path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y", "label"])
            for (x, y), label in zip(report.embedding, report.labels):
                writer.writerow([f"{x:.4f}", f"{y:.4f}", int(label)])
        print(f"Wrote t-SNE coordinates for {name} to {csv_path}")

    print()
    print(format_table(rows, title="Figure 1 — latent-space concentration statistics"))
    print("\nknn_label_agreement far above positive_rate means match pairs are")
    print("concentrated in specific regions — the property the battleship approach exploits.")


if __name__ == "__main__":
    main()
