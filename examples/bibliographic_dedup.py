"""Bibliographic record linkage from CSV files (DBLP-Scholar style).

This example shows the full data path a downstream user would follow with
their own data:

1. export a benchmark to the standard CSV layout (stand-in for "your data"),
2. read the tables back and run a blocker to produce candidate pairs,
3. assemble an :class:`EMDataset` and run a short battleship campaign,
4. apply the trained matcher to score every candidate pair.

Run with::

    python examples/bibliographic_dedup.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.blocking import TokenBlocker, evaluate_blocking
from repro.core import ActiveLearningLoop, BattleshipSelector, MatcherConfig, load_benchmark
from repro.data import EMDataset, bibliographic_schema
from repro.data.io import export_dataset, read_pairs_csv, read_table_csv
from repro.neural.featurizer import FeaturizerConfig, PairFeaturizer


def main() -> None:
    # --- 1. "Your data": two bibliographic CSV files -------------------------
    source = load_benchmark("dblp_scholar", scale="tiny", random_state=3)
    workdir = Path(tempfile.mkdtemp(prefix="repro_dblp_"))
    files = export_dataset(source, workdir)
    print(f"Wrote benchmark CSVs to {workdir}")

    schema = bibliographic_schema()
    dblp = read_table_csv(files["tableA"], schema, name="dblp")
    scholar = read_table_csv(files["tableB"], schema, name="scholar")
    gold_pairs = read_pairs_csv(files["pairs"])
    print(f"Loaded {len(dblp)} DBLP records and {len(scholar)} Scholar records")

    # --- 2. Blocking ----------------------------------------------------------
    blocker = TokenBlocker(attributes=("title",), max_block_size=100)
    candidates = blocker.block(dblp, scholar)
    report = evaluate_blocking(candidates, gold_pairs, dblp, scholar)
    print(f"Blocking: {report.num_candidates} candidates, "
          f"pair completeness {report.pair_completeness:.2f}, "
          f"reduction ratio {report.reduction_ratio:.3f}")

    # --- 3. Low-resource active learning on the gold candidate set ----------
    dataset = EMDataset("dblp_scholar_csv", dblp, scholar, gold_pairs, random_state=3)
    matcher_config = MatcherConfig(hidden_dims=(96, 48), epochs=8, batch_size=16,
                                   learning_rate=2e-3, random_state=2)
    featurizer_config = FeaturizerConfig(hash_dim=128)
    loop = ActiveLearningLoop(
        dataset=dataset, selector=BattleshipSelector(), matcher_config=matcher_config,
        featurizer_config=featurizer_config, iterations=2, budget_per_iteration=20,
        seed_size=20, random_state=3,
    )
    result = loop.run()
    for record in result.records:
        print(f"  {record.num_labeled:>3} labels  test F1={record.f1 * 100:5.1f}%")

    # --- 4. Score every candidate pair with the final matcher ----------------
    matcher = loop.final_matcher_
    assert matcher is not None
    featurizer = PairFeaturizer(featurizer_config)
    unlabeled = [int(i) for i in dataset.train_indices
                 if not loop.final_state_.is_labeled(int(i))]
    scores = matcher.predict_proba(featurizer.transform(dataset, unlabeled))
    top = np.argsort(-scores)[:5]
    print("\nTop-scoring unlabeled candidate pairs (next review targets):")
    for position in top:
        pair = dataset.pairs[unlabeled[int(position)]]
        left, right = dataset.records_for(pair)
        print(f"  score={scores[position]:.3f}  '{left.value('title')[:40]}'  <->  "
              f"'{right.value('title')[:40]}'")


if __name__ == "__main__":
    main()
