"""A product-matching labeling campaign: battleship vs. the baselines.

Scenario: a retailer needs to link its catalog against a marketplace feed
(Walmart-Amazon style data, ~9% true matches) but can only afford a few dozen
labels per review round.  The script runs the same campaign with four
selection strategies and prints which one delivers the best matcher per label
spent — the comparison behind Figure 5 / Table 4 of the paper.

Run with::

    python examples/product_matching_campaign.py
"""

from __future__ import annotations

from repro.baselines import evaluate_zeroer, train_full_matcher
from repro.core import (
    ActiveLearningLoop,
    BattleshipSelector,
    CommitteeSelector,
    EntropySelector,
    MatcherConfig,
    RandomSelector,
    load_benchmark,
)
from repro.evaluation import format_table
from repro.neural.featurizer import FeaturizerConfig

ITERATIONS = 3
BUDGET = 20


def main() -> None:
    dataset = load_benchmark("walmart_amazon", scale="tiny", random_state=11)
    matcher_config = MatcherConfig(hidden_dims=(96, 48), epochs=8, batch_size=16,
                                   learning_rate=2e-3, random_state=1)
    featurizer_config = FeaturizerConfig(hash_dim=128)

    selectors = {
        "battleship": BattleshipSelector(alpha=0.5, beta=0.5),
        "dal (entropy)": EntropySelector(),
        "dial (committee)": CommitteeSelector(),
        "random": RandomSelector(),
    }

    rows = []
    for name, selector in selectors.items():
        loop = ActiveLearningLoop(
            dataset=dataset, selector=selector, matcher_config=matcher_config,
            featurizer_config=featurizer_config, iterations=ITERATIONS,
            budget_per_iteration=BUDGET, seed_size=BUDGET, random_state=11,
        )
        result = loop.run()
        curve = result.learning_curve()
        rows.append({
            "strategy": name,
            "labels_used": result.records[-1].num_labeled,
            "final_f1": round(result.final_f1 * 100, 1),
            "auc": round(curve.auc(), 1),
            "positives_found": result.records[-1].num_labeled_positives,
        })

    # Reference points: no labels at all, and no label limit at all.
    zero = evaluate_zeroer(dataset, random_state=0)
    full = train_full_matcher(dataset, matcher_config, featurizer_config)
    rows.append({"strategy": "zeroer (0 labels)", "labels_used": 0,
                 "final_f1": round(zero.f1 * 100, 1), "auc": "-", "positives_found": "-"})
    rows.append({"strategy": f"full d ({full.num_training_labels} labels)",
                 "labels_used": full.num_training_labels,
                 "final_f1": round(full.f1 * 100, 1), "auc": "-", "positives_found": "-"})

    print(format_table(rows, title="Product matching campaign — Walmart-Amazon style"))
    print("\nHigher AUC = better matcher throughout the campaign, not just at the end.")


if __name__ == "__main__":
    main()
