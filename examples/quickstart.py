"""Quickstart: low-resource entity matching with the battleship approach.

Builds a synthetic Amazon-Google style benchmark, runs a short active-learning
campaign with the battleship selector, and prints the F1 learning curve next
to the fully trained reference model.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import train_full_matcher
from repro.core import ActiveLearningLoop, BattleshipSelector, MatcherConfig, load_benchmark
from repro.neural.featurizer import FeaturizerConfig


def main() -> None:
    # 1. Load a benchmark.  "tiny" keeps this example fast; use scale="paper"
    #    to generate the full Table 3 sizes.
    dataset = load_benchmark("amazon_google", scale="tiny", random_state=7)
    stats = dataset.statistics()
    print(f"Benchmark: {stats.name}  train pairs={stats.num_train_pairs}  "
          f"positive rate={stats.positive_rate:.1%}")

    # 2. Configure a small matcher (the DITTO stand-in) and the battleship selector.
    matcher_config = MatcherConfig(hidden_dims=(96, 48), epochs=8, batch_size=16,
                                   learning_rate=2e-3, random_state=0)
    featurizer_config = FeaturizerConfig(hash_dim=128)
    selector = BattleshipSelector(alpha=0.5, beta=0.5)

    # 3. Run the active-learning loop: a 20-label seed plus 3 iterations of 20
    #    labels each (the paper uses 100 + 8 x 100).
    loop = ActiveLearningLoop(
        dataset=dataset,
        selector=selector,
        matcher_config=matcher_config,
        featurizer_config=featurizer_config,
        iterations=3,
        budget_per_iteration=20,
        seed_size=20,
        random_state=7,
    )
    result = loop.run()

    print("\nF1 vs. labeled samples (battleship):")
    for record in result.records:
        print(f"  {record.num_labeled:>4} labels  F1={record.f1 * 100:5.1f}%  "
              f"(weak labels used: {record.num_weak})")

    # 4. Compare with the no-budget-limit reference (Full D).
    full = train_full_matcher(dataset, matcher_config, featurizer_config)
    print(f"\nFull D reference (trained on {full.num_training_labels} labels): "
          f"F1={full.f1 * 100:.1f}%")
    print(f"Battleship reached {result.final_f1 / max(full.f1, 1e-9):.0%} of the fully "
          f"trained F1 using {result.records[-1].num_labeled} labels.")


if __name__ == "__main__":
    main()
