"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so that
environments whose setuptools/pip lack PEP 660 editable-install support (e.g.
offline machines without the ``wheel`` package) can still run
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
